#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hytap {
namespace {

TEST(ThreadPoolTest, MorselCount) {
  EXPECT_EQ(ThreadPool::MorselCount(0, 0, 16), 0u);
  EXPECT_EQ(ThreadPool::MorselCount(5, 5, 16), 0u);
  EXPECT_EQ(ThreadPool::MorselCount(7, 5, 16), 0u);  // empty range
  EXPECT_EQ(ThreadPool::MorselCount(0, 1, 16), 1u);
  EXPECT_EQ(ThreadPool::MorselCount(0, 16, 16), 1u);
  EXPECT_EQ(ThreadPool::MorselCount(0, 17, 16), 2u);
  EXPECT_EQ(ThreadPool::MorselCount(10, 100, 30), 3u);
}

TEST(ThreadPoolTest, ZeroLengthRangeNeverInvokes) {
  std::atomic<int> calls{0};
  ThreadPool::Global().ParallelFor(
      42, 42, 8, 4, [&](size_t, size_t, size_t) { ++calls; });
  ThreadPool::Global().ParallelFor(
      42, 10, 8, 4, [&](size_t, size_t, size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, MorselsPartitionTheRangeExactly) {
  const size_t begin = 13, end = 1013, grain = 64;
  const size_t morsels = ThreadPool::MorselCount(begin, end, grain);
  std::vector<std::pair<size_t, size_t>> ranges(morsels);
  ThreadPool::Global().ParallelFor(
      begin, end, grain, 8,
      [&](size_t m, size_t b, size_t e) { ranges[m] = {b, e}; });
  size_t expected_begin = begin;
  for (size_t m = 0; m < morsels; ++m) {
    EXPECT_EQ(ranges[m].first, expected_begin) << m;
    EXPECT_GT(ranges[m].second, ranges[m].first) << m;
    EXPECT_LE(ranges[m].second - ranges[m].first, grain) << m;
    expected_begin = ranges[m].second;
  }
  EXPECT_EQ(expected_begin, end);
}

TEST(ThreadPoolTest, ParallelSumMatchesSerial) {
  const size_t n = 100000;
  std::vector<uint64_t> data(n);
  std::iota(data.begin(), data.end(), 1);
  const size_t morsels = ThreadPool::MorselCount(0, n, 1024);
  std::vector<uint64_t> partial(morsels, 0);
  ThreadPool::Global().ParallelFor(0, n, 1024, 8,
                                   [&](size_t m, size_t b, size_t e) {
                                     for (size_t i = b; i < e; ++i) {
                                       partial[m] += data[i];
                                     }
                                   });
  uint64_t total = 0;
  for (uint64_t p : partial) total += p;
  EXPECT_EQ(total, n * (n + 1) / 2);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      ThreadPool::Global().ParallelFor(0, 1000, 10, 8,
                                       [&](size_t m, size_t, size_t) {
                                         if (m == 7) {
                                           throw std::runtime_error("boom");
                                         }
                                       }),
      std::runtime_error);
  // The pool is still usable after a failed ParallelFor.
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(
      0, 1000, 10, 8, [&](size_t, size_t b, size_t e) { count += e - b; });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  const size_t outer = 64, inner = 256;
  std::vector<uint64_t> sums(outer, 0);
  ThreadPool::Global().ParallelFor(
      0, outer, 1, 8, [&](size_t, size_t ob, size_t oe) {
        for (size_t o = ob; o < oe; ++o) {
          // Nested call: must neither deadlock nor misplace morsels.
          const size_t im = ThreadPool::MorselCount(0, inner, 32);
          std::vector<uint64_t> partial(im, 0);
          ThreadPool::Global().ParallelFor(0, inner, 32, 4,
                                           [&](size_t m, size_t b, size_t e) {
                                             for (size_t i = b; i < e; ++i) {
                                               partial[m] += i;
                                             }
                                           });
          for (uint64_t p : partial) sums[o] += p;
        }
      });
  for (size_t o = 0; o < outer; ++o) {
    EXPECT_EQ(sums[o], inner * (inner - 1) / 2) << o;
  }
}

TEST(ThreadPoolTest, MaxWorkersCapForcesInline) {
  ThreadPool& pool = ThreadPool::Global();
  pool.set_max_workers(1);
  std::vector<size_t> order;
  pool.ParallelFor(0, 100, 10, 8, [&](size_t m, size_t, size_t) {
    order.push_back(m);  // unsynchronized: safe only because serial
  });
  pool.set_max_workers(SIZE_MAX);
  ASSERT_EQ(order.size(), 10u);
  for (size_t m = 0; m < order.size(); ++m) EXPECT_EQ(order[m], m);
}

TEST(ThreadPoolTest, ManyConcurrentCallsDrainFully) {
  for (int round = 0; round < 20; ++round) {
    std::atomic<size_t> count{0};
    ThreadPool::Global().ParallelFor(
        0, 4096, 64, 8, [&](size_t, size_t b, size_t e) { count += e - b; });
    ASSERT_EQ(count.load(), 4096u) << round;
  }
}


TEST(ThreadPoolTest, HighPriorityOverloadComputesSameResult) {
  const size_t n = 100000;
  std::atomic<uint64_t> sum{0};
  ThreadPool::Global().ParallelFor(
      0, n, 1024, 8, ThreadPool::TaskPriority::kHigh,
      [&](size_t, size_t b, size_t e) {
        uint64_t local = 0;
        for (size_t i = b; i < e; ++i) local += i;
        sum += local;
      });
  EXPECT_EQ(sum.load(), uint64_t(n) * (n - 1) / 2);
}

TEST(ThreadPoolTest, PriorityGuardAppliesAmbientPriority) {
  // The guard routes 4-arg ParallelFor calls through the high-priority
  // queue; results must be unaffected (fairness is pure scheduling).
  std::atomic<uint64_t> sum{0};
  {
    ThreadPool::PriorityGuard guard(ThreadPool::TaskPriority::kHigh);
    ThreadPool::Global().ParallelFor(0, 10000, 256, 8,
                                     [&](size_t, size_t b, size_t e) {
                                       uint64_t local = 0;
                                       for (size_t i = b; i < e; ++i) {
                                         local += i;
                                       }
                                       sum += local;
                                     });
  }
  EXPECT_EQ(sum.load(), 10000ull * 9999 / 2);
  // Guard destroyed: back to normal priority; the pool still works.
  std::atomic<size_t> count{0};
  ThreadPool::Global().ParallelFor(
      0, 1000, 10, 8, [&](size_t, size_t b, size_t e) { count += e - b; });
  EXPECT_EQ(count.load(), 1000u);
}

TEST(ThreadPoolTest, HelperYieldsNormalTaskToHighPriorityWork) {
  // One helper, long-running "OLAP" task at normal priority. When a
  // high-priority "OLTP" task arrives, the helper must abandon the OLAP
  // task at a morsel boundary (counted in priority_yields) and service the
  // OLTP task first — and both tasks must still run every morsel exactly
  // once.
  ThreadPool pool(2);
  const uint64_t yields_before = pool.priority_yields();
  std::atomic<size_t> olap_rows{0};
  std::atomic<size_t> oltp_rows{0};
  std::thread olap([&] {
    pool.ParallelFor(0, 200, 1, 2, ThreadPool::TaskPriority::kNormal,
                     [&](size_t, size_t b, size_t e) {
                       std::this_thread::sleep_for(
                           std::chrono::milliseconds(2));
                       olap_rows += e - b;
                     });
  });
  // Let the helper sink into the OLAP task before the OLTP burst.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool.ParallelFor(0, 8, 1, 2, ThreadPool::TaskPriority::kHigh,
                   [&](size_t, size_t b, size_t e) {
                     std::this_thread::sleep_for(std::chrono::milliseconds(1));
                     oltp_rows += e - b;
                   });
  olap.join();
  EXPECT_EQ(olap_rows.load(), 200u);
  EXPECT_EQ(oltp_rows.load(), 8u);
  EXPECT_GT(pool.priority_yields(), yields_before);
}

}  // namespace
}  // namespace hytap

// Anytime solver portfolio (DESIGN.md §13): determinism of the parallel
// branch-and-bound, bit-for-bit agreement with the exact selector at an
// unlimited budget, valid incumbents under mid-solve cancellation, and the
// analytic LP bound against the simplex relaxation.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/random.h"
#include "selection/selectors.h"
#include "solver/branch_and_bound.h"
#include "solver/portfolio.h"
#include "solver/simplex.h"
#include "workload/example1.h"

namespace hytap {
namespace {

SelectionProblem MakeProblem(const Workload& workload, double share) {
  SelectionProblem problem;
  problem.workload = &workload;
  problem.budget_bytes = share * workload.TotalBytes();
  return problem;
}

std::vector<KnapsackItem> RandomItems(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<KnapsackItem> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double weight = 1.0 + rng.NextDouble() * 99.0;
    // Weakly correlated: hard enough that the search actually branches.
    items.push_back(KnapsackItem{weight * (0.8 + 0.4 * rng.NextDouble()),
                                 weight});
  }
  return items;
}

TEST(ParallelKnapsackTest, WorkerCountDoesNotChangeTheAnswer) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const std::vector<KnapsackItem> items = RandomItems(60, seed);
    const double capacity = 40.0 * 25.0;
    KnapsackSolution reference;
    for (uint32_t workers : {1u, 2u, 4u}) {
      KnapsackOptions options;
      options.workers = workers;
      const KnapsackSolution solution =
          SolveKnapsack(items, capacity, options);
      ASSERT_TRUE(solution.optimal);
      if (workers == 1) {
        reference = solution;
        continue;
      }
      // Bit-identical: the same take-vector and the exact same profit
      // double, not merely an equal objective.
      EXPECT_EQ(solution.take, reference.take) << "seed " << seed;
      EXPECT_EQ(solution.profit, reference.profit) << "seed " << seed;
      EXPECT_EQ(solution.weight, reference.weight) << "seed " << seed;
    }
  }
}

TEST(ParallelKnapsackTest, RepeatedParallelRunsAreIdentical) {
  const std::vector<KnapsackItem> items = RandomItems(80, 7);
  const double capacity = 1200.0;
  KnapsackOptions options;
  options.workers = 4;
  const KnapsackSolution first = SolveKnapsack(items, capacity, options);
  ASSERT_TRUE(first.optimal);
  for (int run = 0; run < 5; ++run) {
    const KnapsackSolution again = SolveKnapsack(items, capacity, options);
    EXPECT_EQ(again.take, first.take);
    EXPECT_EQ(again.profit, first.profit);
  }
}

TEST(ParallelKnapsackTest, GapAndCountersAreReported) {
  const std::vector<KnapsackItem> items = RandomItems(40, 3);
  const KnapsackSolution solution = SolveKnapsack(items, 500.0);
  ASSERT_TRUE(solution.optimal);
  EXPECT_GT(solution.nodes, 0u);
  EXPECT_GE(solution.lp_bound, solution.profit);
  EXPECT_GE(solution.gap, 0.0);
  EXPECT_NEAR(solution.gap,
              (solution.lp_bound - solution.profit) / solution.lp_bound,
              1e-12);
}

TEST(ParallelKnapsackTest, CancelTokenStopsTheSearch) {
  // A large hard instance plus an already-fired token: the solver must
  // return promptly with cancelled = true and a feasible incumbent.
  const std::vector<KnapsackItem> items = RandomItems(5000, 11);
  std::atomic<bool> cancel{true};
  KnapsackOptions options;
  options.workers = 2;
  options.cancel = &cancel;
  const KnapsackSolution solution =
      SolveKnapsack(items, 0.25 * 5000.0 * 50.0, options);
  EXPECT_TRUE(solution.cancelled);
  EXPECT_FALSE(solution.optimal);
  EXPECT_LE(solution.weight, 0.25 * 5000.0 * 50.0 + 1e-6);
}

TEST(PortfolioTest, UnlimitedBudgetMatchesExactSelectorBitForBit) {
  for (uint64_t seed : {1u, 5u, 9u}) {
    Example1Params params;
    params.num_columns = 40;
    params.num_queries = 300;
    params.seed = seed;
    const Workload workload = GenerateExample1(params);
    const SelectionProblem problem = MakeProblem(workload, 0.3);

    const SelectionResult exact = SelectIntegerOptimal(problem);
    ASSERT_TRUE(exact.optimal);

    PortfolioOptions options;
    options.budget_ms = 0.0;  // unlimited
    options.workers = 4;
    SolverPortfolio portfolio(options);
    const PortfolioResult result = portfolio.Solve(problem);

    EXPECT_EQ(result.winner, "exact");
    EXPECT_TRUE(result.proved_optimal);
    EXPECT_FALSE(result.deadline_hit);
    EXPECT_EQ(result.selection.in_dram, exact.in_dram) << "seed " << seed;
    EXPECT_EQ(result.selection.objective, exact.objective);
    EXPECT_EQ(result.selection.scan_cost, exact.scan_cost);
  }
}

TEST(PortfolioTest, DeadlineLeavesValidIncumbent) {
  // Large instance with a ~zero budget: the race is cancelled almost
  // immediately, yet the portfolio must still return a feasible placement
  // (the greedy baseline publishes before doing any work).
  const Workload workload = GenerateMultiTenantWorkload(200, 50, 4, 21);
  const SelectionProblem problem = MakeProblem(workload, 0.2);

  PortfolioOptions options;
  options.budget_ms = 1.0;
  options.workers = 2;
  SolverPortfolio portfolio(options);
  const PortfolioResult result = portfolio.Solve(problem);

  ASSERT_EQ(result.selection.in_dram.size(), workload.column_count());
  EXPECT_LE(result.selection.dram_bytes, problem.budget_bytes + 1e-6);
  EXPECT_GE(result.gap, 0.0);
  EXPECT_GE(result.selection.objective,
            result.lp_bound - 1e-9 * std::abs(result.lp_bound));
}

TEST(PortfolioTest, CancellationMidSolveLeavesValidIncumbent) {
  // Drive a solver directly through the start/stop idiom: start on a hard
  // instance, stop mid-search, and check the incumbent snapshot is feasible.
  const Workload workload = GenerateMultiTenantWorkload(100, 100, 4, 33);
  const SelectionProblem problem = MakeProblem(workload, 0.25);
  CostModel model(*problem.workload, problem.params);
  const KnapsackView view = BuildKnapsackView(problem, model);

  auto solver = MakeExactBnbSolver(&view, 2, uint64_t(200'000'000));
  solver->StartSolving();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  solver->StopSolving();

  const SolverIncumbent incumbent = solver->GetIncumbent();
  if (incumbent.valid) {
    double weight = 0.0;
    double profit = 0.0;
    ASSERT_EQ(incumbent.take.size(), view.items.size());
    for (size_t k = 0; k < view.items.size(); ++k) {
      if (incumbent.take[k]) {
        weight += view.items[k].weight;
        profit += view.items[k].profit;
      }
    }
    EXPECT_LE(weight, view.capacity * (1.0 + 1e-9) + 1e-6);
    EXPECT_NEAR(profit, incumbent.profit, 1e-6 * std::max(1.0, profit));
    EXPECT_GE(incumbent.objective, view.ObjectiveLowerBound() - 1e-6);
  }
}

TEST(PortfolioTest, TimelineGapIsMonotoneNonIncreasing) {
  Example1Params params;
  params.num_columns = 60;
  params.num_queries = 400;
  params.seed = 2;
  const Workload workload = GenerateExample1(params);
  const SelectionProblem problem = MakeProblem(workload, 0.4);

  PortfolioOptions options;
  options.budget_ms = 0.0;
  options.workers = 2;
  SolverPortfolio portfolio(options);
  const PortfolioResult result = portfolio.Solve(problem);

  ASSERT_FALSE(result.timeline.empty());
  double last_gap = std::numeric_limits<double>::infinity();
  for (const IncumbentEvent& event : result.timeline) {
    EXPECT_LE(event.gap, last_gap + 1e-15);
    last_gap = event.gap;
  }
  // The race completed, so the final portfolio gap is the winner's gap.
  EXPECT_NEAR(result.timeline.back().gap, result.gap, 1e-9);
}

TEST(PortfolioTest, AnalyticLpBoundMatchesSimplexRelaxation) {
  for (uint64_t seed : {3u, 8u}) {
    Example1Params params;
    params.num_columns = 30;
    params.num_queries = 200;
    params.seed = seed;
    const Workload workload = GenerateExample1(params);
    const SelectionProblem problem = MakeProblem(workload, 0.35);

    CostModel model(*problem.workload, problem.params);
    const KnapsackView view = BuildKnapsackView(problem, model);
    const RelaxationResult relaxed = SolveRelaxationSimplex(problem);
    ASSERT_TRUE(relaxed.feasible);
    // Same relaxation, two solvers: the analytic Dantzig bound and the
    // dense simplex must agree on the optimal relaxed scan cost.
    EXPECT_NEAR(view.ObjectiveLowerBound(), relaxed.scan_cost,
                1e-6 * std::abs(relaxed.scan_cost));
  }
}

TEST(PortfolioTest, SolverMetricsAreRecorded) {
  SetMetricsEnabled(true);
  MetricsRegistry::Global().ResetAll();

  Example1Params params;
  params.num_columns = 30;
  params.num_queries = 200;
  params.seed = 4;
  const Workload workload = GenerateExample1(params);
  const SelectionProblem problem = MakeProblem(workload, 0.3);

  PortfolioOptions options;
  options.budget_ms = 0.0;
  options.workers = 2;
  SolverPortfolio portfolio(options);
  const PortfolioResult result = portfolio.Solve(problem);
  ASSERT_TRUE(result.proved_optimal);

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.counters.at("hytap_solver_runs_total"), 1u);
  EXPECT_GT(snapshot.counters.at("hytap_solver_nodes_total"), 0u);
  EXPECT_GT(snapshot.counters.at("hytap_solver_incumbent_updates_total"), 0u);
  EXPECT_EQ(snapshot.counters.at("hytap_solver_wins_exact_total"), 1u);
  EXPECT_EQ(snapshot.histograms.at("hytap_solver_wall_ns").count, 1u);
  SetMetricsEnabled(false);
}

TEST(PortfolioTest, SimplexIterationLimitIsDistinctStatus) {
  // Satellite: the simplex reports hitting the cap as a status instead of
  // silently returning an infeasible-looking solution.
  LpProblem lp;
  lp.objective = {-1.0, -1.0};
  lp.constraints = {{1.0, 0.0}, {0.0, 1.0}};
  lp.rhs = {1.0, 1.0};
  const LpSolution capped = SolveLp(lp, 1);
  EXPECT_FALSE(capped.feasible);
  EXPECT_EQ(capped.status, LpStatus::kIterationLimit);

  const LpSolution solved = SolveLp(lp);
  EXPECT_TRUE(solved.feasible);
  EXPECT_EQ(solved.status, LpStatus::kOptimal);
}

TEST(PortfolioTest, AdvisorPortfolioAlgorithmProducesFeasiblePlacement) {
  // The Advisor enum gained kPortfolio; a Recommendation through it must be
  // budget-feasible and name a winner.
  Example1Params params;
  params.num_columns = 25;
  params.num_queries = 150;
  params.seed = 6;
  const Workload workload = GenerateExample1(params);
  const SelectionProblem problem = MakeProblem(workload, 0.3);

  PortfolioOptions options;
  options.budget_ms = 50.0;
  options.workers = 2;
  SolverPortfolio portfolio(options);
  const PortfolioResult result = portfolio.Solve(problem);
  EXPECT_FALSE(result.winner.empty());
  EXPECT_LE(result.selection.dram_bytes, problem.budget_bytes + 1e-6);
  // Small instance, generous time budget: the incumbent is within 1% of the
  // exact optimum (result.gap also carries the LP integrality gap, which can
  // exceed 1% at N = 25, so compare against the integer optimum instead).
  const SelectionResult exact = SelectIntegerOptimal(problem);
  ASSERT_TRUE(exact.optimal);
  EXPECT_LE(result.selection.objective,
            exact.objective * 1.01 + 1e-9);
}

}  // namespace
}  // namespace hytap

#include "workload/workload_monitor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/random.h"
#include "core/tiered_table.h"

namespace hytap {
namespace {

/// A synthetic observation: one scan step per filtered column, all with the
/// same observed selectivity, advancing the simulated clock by
/// `simulated_ns`.
QueryObservation MakeObservation(std::vector<ColumnId> columns,
                                 uint64_t simulated_ns,
                                 double observed_selectivity = 0.5) {
  QueryObservation obs;
  std::sort(columns.begin(), columns.end());
  obs.filtered_columns = std::move(columns);
  for (ColumnId c : obs.filtered_columns) {
    StepObservation step;
    step.column = c;
    step.kind = StepKind::kScan;
    step.candidates_in = 1000;
    step.candidates_out = uint64_t(1000 * observed_selectivity);
    step.observed_selectivity = observed_selectivity;
    obs.steps.push_back(step);
  }
  obs.simulated_ns = simulated_ns;
  obs.table_rows = 1000;
  return obs;
}

WorkloadMonitor::Options SmallRing(size_t windows, uint64_t window_ns) {
  WorkloadMonitor::Options options;
  options.windows = windows;
  options.window_ns = window_ns;
  return options;
}

TEST(WorkloadMonitorTest, WindowRolloverOnSimulatedClock) {
  WorkloadMonitor monitor(3, SmallRing(3, 100));
  EXPECT_EQ(monitor.window_count(), 1u);
  EXPECT_EQ(monitor.windows_started(), 1u);

  // Both queries *start* inside window 0 even though the second one pushes
  // the clock past the boundary (start-time semantics).
  monitor.Record(MakeObservation({0}, 40));
  EXPECT_EQ(monitor.now_ns(), 40u);
  EXPECT_EQ(monitor.window_count(), 1u);
  monitor.Record(MakeObservation({0}, 70));
  EXPECT_EQ(monitor.now_ns(), 110u);
  EXPECT_EQ(monitor.window_count(), 2u);
  EXPECT_EQ(monitor.windows_started(), 2u);
  EXPECT_EQ(monitor.Snapshot(0).queries, 2u);
  EXPECT_EQ(monitor.Snapshot(1).queries, 0u);
  EXPECT_EQ(monitor.Snapshot(1).start_ns, 100u);

  // A long query crosses two boundaries at once; the ring caps at 3 live
  // windows, evicting the oldest.
  monitor.Record(MakeObservation({1}, 250));
  EXPECT_EQ(monitor.now_ns(), 360u);
  EXPECT_EQ(monitor.windows_started(), 4u);
  EXPECT_EQ(monitor.window_count(), 3u);
  EXPECT_EQ(monitor.Snapshot(0).index, 1u);
  EXPECT_EQ(monitor.Snapshot(0).queries, 1u);  // the long query's start
  EXPECT_EQ(monitor.Snapshot(2).index, 3u);
  EXPECT_EQ(monitor.Snapshot(2).start_ns, 300u);
  EXPECT_EQ(monitor.queries_observed(), 3u);
}

TEST(WorkloadMonitorTest, ForceRollJumpsToNextBoundary) {
  WorkloadMonitor monitor(2, SmallRing(4, 100));
  monitor.Record(MakeObservation({0}, 10));
  EXPECT_EQ(monitor.now_ns(), 10u);

  monitor.ForceRoll();
  EXPECT_EQ(monitor.now_ns(), 100u);
  EXPECT_EQ(monitor.windows_started(), 2u);

  // Rolling an already-fresh window still opens a new one (phase markers).
  monitor.ForceRoll();
  EXPECT_EQ(monitor.now_ns(), 200u);
  EXPECT_EQ(monitor.windows_started(), 3u);

  monitor.Record(MakeObservation({1}, 5));
  EXPECT_EQ(monitor.Snapshot(monitor.window_count() - 1).queries, 1u);
}

TEST(WorkloadMonitorTest, DriftTracksColumnMixShift) {
  WorkloadMonitor monitor(3, SmallRing(8, 100));
  monitor.Record(MakeObservation({0}, 1));
  monitor.Record(MakeObservation({0}, 1));
  EXPECT_DOUBLE_EQ(monitor.Drift(), 0.0);  // only one non-empty window

  monitor.ForceRoll();
  monitor.Record(MakeObservation({0}, 1));
  EXPECT_DOUBLE_EQ(monitor.Drift(), 0.0);  // same mix

  monitor.ForceRoll();
  monitor.Record(MakeObservation({2}, 1));
  EXPECT_DOUBLE_EQ(monitor.Drift(), 1.0);  // disjoint column sets

  // Empty windows are skipped: drift still compares the newest non-empty
  // pair.
  monitor.ForceRoll();
  monitor.ForceRoll();
  EXPECT_DOUBLE_EQ(monitor.Drift(), 1.0);

  // Half-overlapping mix: TV distance 0.5.
  monitor.Record(MakeObservation({0}, 1));
  monitor.Record(MakeObservation({2}, 1));
  EXPECT_DOUBLE_EQ(monitor.Drift(), 0.5);
}

TEST(WorkloadMonitorTest, WindowDistanceIsTotalVariation) {
  WorkloadWindowSnapshot a, b;
  a.column_frequency = {2.0, 2.0, 0.0};
  b.column_frequency = {1.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(WindowDistance(a, b), 0.0);  // same normalized mix
  b.column_frequency = {0.0, 0.0, 4.0};
  EXPECT_DOUBLE_EQ(WindowDistance(a, b), 1.0);  // disjoint
  b.column_frequency = {2.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(WindowDistance(a, b), 0.5);  // half shifted
}

TEST(WorkloadMonitorTest, WindowsToWorkloadUsesObservedSelectivities) {
  WorkloadMonitor monitor(3, SmallRing(4, 1'000'000'000));
  monitor.Record(MakeObservation({1}, 10, 0.2));
  monitor.Record(MakeObservation({1}, 10, 0.2));
  monitor.Record(MakeObservation({1, 2}, 10, 0.5));

  const std::vector<double> sizes = {100.0, 200.0, 300.0};
  const std::vector<double> fallback = {0.9, 0.9, 0.9};
  const std::vector<std::string> names = {"a", "b", "c"};
  Workload workload =
      WindowsToWorkload(monitor.Export(), sizes, fallback, names);
  ASSERT_EQ(workload.column_count(), 3u);
  EXPECT_DOUBLE_EQ(workload.column_sizes[1], 200.0);
  // Column 0 never filtered: fallback. Column 1: mean of {0.2, 0.2, 0.5}.
  EXPECT_DOUBLE_EQ(workload.selectivities[0], 0.9);
  EXPECT_NEAR(workload.selectivities[1], 0.3, 1e-12);
  EXPECT_NEAR(workload.selectivities[2], 0.5, 1e-12);
  // Two templates with their execution counts as frequencies.
  ASSERT_EQ(workload.query_count(), 2u);
  double freq_1 = 0.0, freq_12 = 0.0;
  for (const QueryTemplate& q : workload.queries) {
    if (q.columns.size() == 1) freq_1 = q.frequency;
    if (q.columns.size() == 2) freq_12 = q.frequency;
  }
  EXPECT_DOUBLE_EQ(freq_1, 2.0);
  EXPECT_DOUBLE_EQ(freq_12, 1.0);

  // recent=1 restricts the aggregation to the newest window.
  monitor.ForceRoll();
  monitor.Record(MakeObservation({0}, 10, 0.7));
  Workload newest =
      WindowsToWorkload(monitor.Export(), sizes, fallback, names, 1);
  ASSERT_EQ(newest.query_count(), 1u);
  EXPECT_EQ(newest.queries[0].columns, (std::vector<uint32_t>{0}));
  EXPECT_NEAR(newest.selectivities[0], 0.7, 1e-12);
  EXPECT_DOUBLE_EQ(newest.selectivities[1], 0.9);  // back to fallback
}

TEST(WorkloadMonitorTest, SequenceSinkAndReset) {
  struct CountingSink : QueryObservationSink {
    size_t calls = 0;
    uint64_t last_ns = 0;
    void Observe(const QueryObservation& observation) override {
      ++calls;
      last_ns = observation.simulated_ns;
    }
  } sink;

  WorkloadMonitor monitor(2, SmallRing(2, 100));
  monitor.set_sink(&sink);
  EXPECT_EQ(monitor.observation_sequence(), 0u);
  monitor.Record(MakeObservation({0}, 17));
  EXPECT_EQ(monitor.observation_sequence(), 1u);
  EXPECT_EQ(monitor.last_observation().simulated_ns, 17u);
  EXPECT_EQ(sink.calls, 1u);
  EXPECT_EQ(sink.last_ns, 17u);

  monitor.set_sink(nullptr);
  monitor.Record(MakeObservation({0}, 3));
  EXPECT_EQ(sink.calls, 1u);  // detached
  EXPECT_EQ(monitor.observation_sequence(), 2u);

  monitor.Reset();
  EXPECT_EQ(monitor.now_ns(), 0u);
  EXPECT_EQ(monitor.window_count(), 1u);
  EXPECT_EQ(monitor.windows_started(), 1u);
  EXPECT_EQ(monitor.queries_observed(), 0u);
  EXPECT_EQ(monitor.observation_sequence(), 0u);
}

TEST(WorkloadMonitorTest, KnobToggles) {
  const bool was = WorkloadMonitorEnabled();
  SetWorkloadMonitorEnabled(false);
  EXPECT_FALSE(WorkloadMonitorEnabled());
  SetWorkloadMonitorEnabled(true);
  EXPECT_TRUE(WorkloadMonitorEnabled());
  SetWorkloadMonitorEnabled(was);
}

// ---------------------------------------------------------------------------
// Bit-identity: the monitor is a pure observer. With the knob on or off,
// query results and the simulated cost model must be identical at the same
// thread count — every ns field included — and an armed fault injector must
// not be shifted by a single draw. Mirrors parallel_equivalence_test, but
// drives the full TieredTable so the monitor/calibrator wiring is live.
// ---------------------------------------------------------------------------

constexpr size_t kMainRows = 4000;
constexpr size_t kDeltaRows = 120;

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"qty", DataType::kInt64, 0});
  return schema;
}

TieredTableOptions InstanceOptions() {
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = 7;
  return options;
}

/// One self-contained engine instance, reproducibly seeded.
struct Instance {
  TieredTable table;

  explicit Instance(FaultConfig faults = FaultConfig())
      : table("t", TestSchema(), InstanceOptions()) {
    Rng rng(1234);
    std::vector<Row> rows;
    rows.reserve(kMainRows);
    for (size_t r = 0; r < kMainRows; ++r) {
      rows.push_back(Row{Value(int32_t(r)),
                         Value(int32_t(rng.NextInt(0, 50))),
                         Value(rng.NextDouble(0.0, 1000.0)),
                         Value(int64_t(rng.NextInt(1, 10000)))});
    }
    table.Load(rows);
    EXPECT_TRUE(table.ApplyPlacement({true, true, false, false}).ok());
    if (faults.AnyFaults()) table.store().ConfigureFaults(faults);
    Transaction txn = table.Begin();
    for (size_t d = 0; d < kDeltaRows; ++d) {
      EXPECT_TRUE(table
                      .Insert(txn, Row{Value(int32_t(kMainRows + d)),
                                       Value(int32_t(rng.NextInt(0, 50))),
                                       Value(rng.NextDouble(0.0, 1000.0)),
                                       Value(int64_t(rng.NextInt(1, 10000)))})
                      .ok());
    }
    table.Commit(&txn);
  }
};

std::vector<Query> RandomQueries(size_t count) {
  Rng rng(99);
  std::vector<Query> queries;
  for (size_t q = 0; q < count; ++q) {
    Query query;
    const int preds = 1 + int(rng.NextBounded(2));
    for (int p = 0; p < preds; ++p) {
      const ColumnId col = ColumnId(1 + rng.NextBounded(3));
      if (col == 1) {
        query.predicates.push_back(
            Predicate::Equals(1, Value(int32_t(rng.NextInt(0, 50)))));
      } else if (col == 2) {
        const double lo = rng.NextDouble(0.0, 900.0);
        query.predicates.push_back(
            Predicate::Between(2, Value(lo), Value(lo + 150.0)));
      } else {
        const int64_t lo = rng.NextInt(0, 8000);
        query.predicates.push_back(
            Predicate::Between(3, Value(lo), Value(lo + 2500)));
      }
    }
    query.projections = {0, 2};
    query.aggregates = {Aggregate::Count(), Aggregate::Sum(2),
                        Aggregate::Min(3), Aggregate::Max(2)};
    queries.push_back(std::move(query));
  }
  return queries;
}

std::vector<QueryResult> RunAll(Instance& instance,
                                const std::vector<Query>& queries,
                                uint32_t threads) {
  Transaction txn = instance.table.Begin();
  std::vector<QueryResult> results;
  for (const Query& query : queries) {
    results.push_back(instance.table.Execute(txn, query, threads));
  }
  instance.table.Abort(&txn);
  return results;
}

void ExpectSameResults(const QueryResult& a, const QueryResult& b, size_t q) {
  EXPECT_EQ(a.positions, b.positions) << "query " << q;
  EXPECT_EQ(a.rows, b.rows) << "query " << q;
  ASSERT_EQ(a.aggregate_values.size(), b.aggregate_values.size());
  for (size_t i = 0; i < a.aggregate_values.size(); ++i) {
    EXPECT_TRUE(a.aggregate_values[i] == b.aggregate_values[i])
        << "query " << q << " aggregate " << i;
  }
  EXPECT_EQ(a.candidate_trace, b.candidate_trace) << "query " << q;
  EXPECT_EQ(a.io.page_reads, b.io.page_reads) << "query " << q;
  EXPECT_EQ(a.io.cache_hits, b.io.cache_hits) << "query " << q;
  EXPECT_EQ(a.io.retries, b.io.retries) << "query " << q;
  EXPECT_EQ(a.io.morsels_pruned, b.io.morsels_pruned) << "query " << q;
  EXPECT_EQ(a.io.pages_pruned, b.io.pages_pruned) << "query " << q;
  EXPECT_EQ(a.io.checksum_failures, b.io.checksum_failures) << "query " << q;
  EXPECT_EQ(a.io.quarantined_pages, b.io.quarantined_pages) << "query " << q;
  EXPECT_EQ(a.io.device_ns, b.io.device_ns) << "query " << q;
  EXPECT_EQ(a.io.dram_ns, b.io.dram_ns) << "query " << q;
}

void ExpectSameFaultStats(const FaultStats& a, const FaultStats& b) {
  EXPECT_EQ(a.transient_errors, b.transient_errors);
  EXPECT_EQ(a.corrupted_reads, b.corrupted_reads);
  EXPECT_EQ(a.corrupted_writes, b.corrupted_writes);
  EXPECT_EQ(a.dead_pages, b.dead_pages);
  EXPECT_EQ(a.latency_spikes, b.latency_spikes);
  EXPECT_EQ(a.checksum_failures, b.checksum_failures);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.failed_reads, b.failed_reads);
  EXPECT_EQ(a.fast_fail_reads, b.fast_fail_reads);
  EXPECT_EQ(a.quarantined_pages, b.quarantined_pages);
}

TEST(WorkloadMonitorTest, KnobOffBitIdenticalAcrossThreadCounts) {
  const std::vector<Query> queries = RandomQueries(12);
  const bool was = WorkloadMonitorEnabled();
  for (uint32_t threads : {1u, 2u, 4u}) {
    Instance off_instance;
    SetWorkloadMonitorEnabled(false);
    const std::vector<QueryResult> off =
        RunAll(off_instance, queries, threads);

    Instance on_instance;
    SetWorkloadMonitorEnabled(true);
    const std::vector<QueryResult> on = RunAll(on_instance, queries, threads);
    SetWorkloadMonitorEnabled(was);

    ASSERT_EQ(on.size(), off.size());
    for (size_t q = 0; q < off.size(); ++q) {
      ExpectSameResults(off[q], on[q], q);
    }
    // Off: the observation path was never entered. On: one observation per
    // query, and the plan cache learned the same templates either way.
    EXPECT_EQ(off_instance.table.monitor().queries_observed(), 0u);
    EXPECT_EQ(on_instance.table.monitor().queries_observed(), queries.size());
    EXPECT_EQ(off_instance.table.plan_cache().template_count(),
              on_instance.table.plan_cache().template_count());
    EXPECT_EQ(off_instance.table.plan_cache().total_executions(),
              on_instance.table.plan_cache().total_executions());
  }
}

TEST(WorkloadMonitorTest, KnobDoesNotPerturbSeededFaultSchedules) {
  FaultConfig faults;
  faults.seed = 11;
  faults.read_error_rate = 0.08;
  faults.read_corruption_rate = 0.03;
  faults.page_failure_rate = 0.004;
  faults.latency_spike_rate = 0.05;
  const std::vector<Query> queries = RandomQueries(12);
  const bool was = WorkloadMonitorEnabled();
  for (uint32_t threads : {1u, 4u}) {
    Instance off_instance(faults);
    SetWorkloadMonitorEnabled(false);
    const std::vector<QueryResult> off =
        RunAll(off_instance, queries, threads);

    Instance on_instance(faults);
    SetWorkloadMonitorEnabled(true);
    const std::vector<QueryResult> on = RunAll(on_instance, queries, threads);
    SetWorkloadMonitorEnabled(was);

    ASSERT_EQ(on.size(), off.size());
    for (size_t q = 0; q < off.size(); ++q) {
      EXPECT_EQ(off[q].status.code(), on[q].status.code()) << "query " << q;
      EXPECT_EQ(off[q].status.message(), on[q].status.message())
          << "query " << q;
      ExpectSameResults(off[q], on[q], q);
    }
    ExpectSameFaultStats(off_instance.table.store().fault_stats(),
                         on_instance.table.store().fault_stats());
  }
}

}  // namespace
}  // namespace hytap

#include "storage/value.h"

#include <gtest/gtest.h>

#include "common/types.h"

namespace hytap {
namespace {

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value(int32_t{1}).type(), DataType::kInt32);
  EXPECT_EQ(Value(int64_t{1}).type(), DataType::kInt64);
  EXPECT_EQ(Value(1.0f).type(), DataType::kFloat);
  EXPECT_EQ(Value(1.0).type(), DataType::kDouble);
  EXPECT_EQ(Value("abc").type(), DataType::kString);
  EXPECT_EQ(Value().type(), DataType::kInt32);  // default
}

TEST(ValueTest, Accessors) {
  EXPECT_EQ(Value(int32_t{-7}).AsInt32(), -7);
  EXPECT_EQ(Value(int64_t{1} << 40).AsInt64(), int64_t{1} << 40);
  EXPECT_FLOAT_EQ(Value(2.5f).AsFloat(), 2.5f);
  EXPECT_DOUBLE_EQ(Value(-3.25).AsDouble(), -3.25);
  EXPECT_EQ(Value(std::string("xyz")).AsString(), "xyz");
}

TEST(ValueTest, CompareInt32) {
  EXPECT_LT(Value(int32_t{1}), Value(int32_t{2}));
  EXPECT_EQ(Value(int32_t{5}), Value(int32_t{5}));
  EXPECT_GT(Value(int32_t{9}), Value(int32_t{-9}));
  EXPECT_LE(Value(int32_t{5}), Value(int32_t{5}));
  EXPECT_GE(Value(int32_t{5}), Value(int32_t{5}));
  EXPECT_NE(Value(int32_t{5}), Value(int32_t{6}));
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value("abc"), Value("abd"));
  EXPECT_LT(Value("ab"), Value("abc"));
  EXPECT_EQ(Value("abc"), Value("abc"));
}

TEST(ValueTest, CompareDoubles) {
  EXPECT_LT(Value(1.5), Value(1.6));
  EXPECT_EQ(Value(0.0), Value(-0.0));
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value(int32_t{42}).ToString(), "42");
  EXPECT_EQ(Value("hi").ToString(), "hi");
  EXPECT_EQ(Value(int64_t{-1}).ToString(), "-1");
}

TEST(ValueTest, FixedWidths) {
  EXPECT_EQ(FixedWidth(DataType::kInt32, 0), 4u);
  EXPECT_EQ(FixedWidth(DataType::kInt64, 0), 8u);
  EXPECT_EQ(FixedWidth(DataType::kFloat, 0), 4u);
  EXPECT_EQ(FixedWidth(DataType::kDouble, 0), 8u);
  EXPECT_EQ(FixedWidth(DataType::kString, 24), 24u);
}

TEST(ValueTest, SerializeRoundTripNumeric) {
  uint8_t buffer[16];
  Value(int32_t{-123456}).SerializeFixed(buffer, 4);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kInt32, 4),
            Value(int32_t{-123456}));
  Value(int64_t{1} << 50).SerializeFixed(buffer, 8);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kInt64, 8),
            Value(int64_t{1} << 50));
  Value(3.5f).SerializeFixed(buffer, 4);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kFloat, 4),
            Value(3.5f));
  Value(-2.25).SerializeFixed(buffer, 8);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kDouble, 8),
            Value(-2.25));
}

TEST(ValueTest, SerializeStringPadsAndTrims) {
  uint8_t buffer[8];
  Value(std::string("ab")).SerializeFixed(buffer, 8);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kString, 8),
            Value(std::string("ab")));
  // Truncation to the fixed width.
  Value(std::string("abcdefghij")).SerializeFixed(buffer, 8);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kString, 8),
            Value(std::string("abcdefgh")));
}

TEST(ValueTest, SerializeEmptyString) {
  uint8_t buffer[4];
  Value(std::string()).SerializeFixed(buffer, 4);
  EXPECT_EQ(Value::DeserializeFixed(buffer, DataType::kString, 4),
            Value(std::string()));
}

TEST(ValueTest, DataTypeNames) {
  EXPECT_STREQ(DataTypeName(DataType::kInt32), "int32");
  EXPECT_STREQ(DataTypeName(DataType::kString), "string");
}

TEST(ValueDeathTest, CrossTypeCompareAborts) {
  EXPECT_DEATH(Value(int32_t{1}).Compare(Value(int64_t{1})), "different");
}

}  // namespace
}  // namespace hytap

// Property-based tests of the paper's formal results (Lemma 1, Theorem 1,
// Theorem 2, Remark 1) over randomized Example-1 instances.

#include <gtest/gtest.h>

#include "common/random.h"
#include "selection/heuristics.h"
#include "selection/selectors.h"
#include "workload/example1.h"

namespace hytap {
namespace {

class TheoremTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Workload MakeWorkload() const {
    Example1Params params;
    params.num_columns = 18;  // small enough for exhaustive cross-checks
    params.num_queries = 120;
    params.seed = GetParam();
    return GenerateExample1(params);
  }
};

// Lemma 1: the continuous penalty problem, solved as an actual LP, returns
// integer solutions for any alpha.
TEST_P(TheoremTest, Lemma1PenaltyLpIntegral) {
  Workload w = MakeWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 5; ++trial) {
    const double alpha = rng.NextDouble(0.0, 500.0);
    auto lp = SelectContinuousSimplex(p, alpha);
    auto threshold = SelectContinuousPenalty(p, alpha);
    EXPECT_EQ(lp.in_dram, threshold.in_dram) << "alpha=" << alpha;
  }
}

// Theorem 1: for every alpha > 0 the penalty solution is Pareto-efficient —
// the exact integer optimum at the same budget achieves the same scan cost.
TEST_P(TheoremTest, Theorem1PenaltySolutionsAreParetoEfficient) {
  Workload w = MakeWorkload();
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  Rng rng(GetParam() * 17 + 3);
  for (int trial = 0; trial < 6; ++trial) {
    const double alpha = rng.NextDouble(1e-3, 400.0);
    auto penalty = SelectContinuousPenalty(p, alpha);
    SelectionProblem budgeted = p;
    budgeted.budget_bytes = penalty.dram_bytes;
    auto integer = SelectIntegerOptimal(budgeted);
    ASSERT_TRUE(integer.optimal);
    // Not dominated: the integer optimum cannot be strictly better at the
    // same memory budget (costs agree up to float noise).
    EXPECT_NEAR(integer.scan_cost, penalty.scan_cost,
                1e-9 * penalty.scan_cost)
        << "alpha=" << alpha;
  }
}

// Theorem 2: the explicit (solver-free) solution equals the penalty solution
// for every alpha, including with reallocation costs.
TEST_P(TheoremTest, Theorem2ExplicitMatchesPenaltyWithReallocation) {
  Workload w = MakeWorkload();
  Rng rng(GetParam() * 13 + 1);
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  p.beta = rng.NextDouble(0.0, 50.0);
  p.current.resize(w.column_count());
  for (auto& y : p.current) y = rng.NextBool(0.5) ? 1 : 0;
  auto frontier = ComputeExplicitFrontier(p);
  for (size_t k = 0; k < frontier.points.size();
       k += 1 + frontier.points.size() / 5) {
    const double alpha = frontier.points[k].alpha * (1.0 - 1e-12);
    if (alpha <= 0.0) continue;
    auto penalty = SelectContinuousPenalty(p, alpha);
    std::vector<uint8_t> prefix(w.column_count(), 0);
    for (size_t j = 0; j <= k; ++j) prefix[frontier.points[j].column] = 1;
    EXPECT_EQ(penalty.in_dram, prefix) << "k=" << k;
  }
}

// Remark 1: optimal penalty allocations are nested in alpha (recursive
// structure), even with reallocation costs.
TEST_P(TheoremTest, Remark1RecursiveStructure) {
  Workload w = MakeWorkload();
  Rng rng(GetParam() * 41 + 11);
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  p.beta = rng.NextDouble(0.0, 20.0);
  p.current.resize(w.column_count());
  for (auto& y : p.current) y = rng.NextBool(0.5) ? 1 : 0;
  std::vector<uint8_t> previous(w.column_count(), 1);
  for (double alpha = 0.0; alpha < 1e6; alpha = alpha * 3 + 0.5) {
    auto result = SelectContinuousPenalty(p, alpha);
    for (size_t i = 0; i < w.column_count(); ++i) {
      EXPECT_LE(result.in_dram[i], previous[i]) << "alpha=" << alpha;
    }
    previous = result.in_dram;
  }
}

// The integer optimum never loses to the model-based and baseline heuristics
// at any budget; the explicit solution is never worse than the heuristics by
// more than it is worse than the optimum.
TEST_P(TheoremTest, OptimalityOrdering) {
  Workload w = MakeWorkload();
  Rng rng(GetParam() * 5 + 2);
  for (int trial = 0; trial < 4; ++trial) {
    const double budget_w = rng.NextDouble(0.05, 0.95);
    auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                  budget_w);
    auto optimal = SelectIntegerOptimal(p);
    ASSERT_TRUE(optimal.optimal);
    auto explicit_sel = SelectExplicit(p);
    EXPECT_GE(explicit_sel.scan_cost, optimal.scan_cost - 1e-6);
    for (auto kind :
         {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
          HeuristicKind::kH3SelectivityPerFreq}) {
      auto heuristic = SelectHeuristic(p, kind);
      EXPECT_GE(heuristic.scan_cost, optimal.scan_cost - 1e-6);
    }
  }
}

// Budget feasibility: every selector respects M(x) <= A.
TEST_P(TheoremTest, AllSelectorsRespectBudget) {
  Workload w = MakeWorkload();
  Rng rng(GetParam() * 23 + 5);
  for (int trial = 0; trial < 4; ++trial) {
    const double budget_w = rng.NextDouble(0.0, 1.0);
    auto p = SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100},
                                                  budget_w);
    EXPECT_LE(SelectIntegerOptimal(p).dram_bytes, p.budget_bytes + 1e-6);
    EXPECT_LE(SelectExplicit(p).dram_bytes, p.budget_bytes + 1e-6);
    EXPECT_LE(SelectGreedyMarginal(p).dram_bytes, p.budget_bytes + 1e-6);
    for (auto kind :
         {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
          HeuristicKind::kH3SelectivityPerFreq}) {
      EXPECT_LE(SelectHeuristic(p, kind).dram_bytes, p.budget_bytes + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TheoremTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace hytap

#include "storage/table.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"note", DataType::kString, 12});
  return schema;
}

std::vector<Row> TestRows(size_t n) {
  std::vector<Row> rows;
  for (size_t r = 0; r < n; ++r) {
    rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 7)),
                       Value(double(r) * 1.5),
                       Value("n" + std::to_string(r % 3))});
  }
  return rows;
}

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 16),
        table_("t", TestSchema(), &txns_, &store_, &buffers_) {}

  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table table_;
};

TEST_F(TableTest, BulkLoadAllDram) {
  table_.BulkLoad(TestRows(100));
  EXPECT_EQ(table_.main_row_count(), 100u);
  EXPECT_EQ(table_.row_count(), 100u);
  for (ColumnId c = 0; c < 4; ++c) {
    EXPECT_EQ(table_.location(c), ColumnLocation::kDram);
    EXPECT_GT(table_.ColumnDramBytes(c), 0u);
  }
  EXPECT_EQ(*table_.GetValue(0, 42, 1, nullptr), Value(int32_t{42}));
  EXPECT_EQ(*table_.GetValue(2, 10, 1, nullptr), Value(15.0));
}

TEST_F(TableTest, InsertGoesToDelta) {
  table_.BulkLoad(TestRows(10));
  Transaction txn = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(txn, Row{Value(int32_t{100}), Value(int32_t{1}),
                                   Value(0.5), Value("x")})
                  .ok());
  txns_.Commit(&txn);
  EXPECT_EQ(table_.delta_row_count(), 1u);
  EXPECT_EQ(table_.row_count(), 11u);
  EXPECT_EQ(*table_.GetValue(0, 10, 1, nullptr), Value(int32_t{100}));
}

TEST_F(TableTest, InsertArityAndTypeChecked) {
  table_.BulkLoad(TestRows(1));
  Transaction txn = txns_.Begin();
  EXPECT_FALSE(table_.Insert(txn, Row{Value(int32_t{1})}).ok());
  EXPECT_FALSE(table_
                   .Insert(txn, Row{Value(1.0), Value(int32_t{1}),
                                    Value(0.5), Value("x")})
                   .ok());
}

TEST_F(TableTest, MvccVisibility) {
  table_.BulkLoad(TestRows(5));
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(writer, Row{Value(int32_t{99}), Value(int32_t{0}),
                                      Value(1.0), Value("w")})
                  .ok());
  Transaction other = txns_.Begin();
  EXPECT_TRUE(table_.IsVisible(5, writer));   // own write
  EXPECT_FALSE(table_.IsVisible(5, other));   // uncommitted
  txns_.Commit(&writer);
  EXPECT_FALSE(table_.IsVisible(5, other));   // stale snapshot
  Transaction later = txns_.Begin();
  EXPECT_TRUE(table_.IsVisible(5, later));
}

TEST_F(TableTest, DeleteInvalidates) {
  table_.BulkLoad(TestRows(5));
  Transaction deleter = txns_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, 2).ok());
  txns_.Commit(&deleter);
  Transaction reader = txns_.Begin();
  EXPECT_FALSE(table_.IsVisible(2, reader));
  EXPECT_TRUE(table_.IsVisible(1, reader));
}

TEST_F(TableTest, SetPlacementEvictsToSscg) {
  table_.BulkLoad(TestRows(200));
  uint64_t migrated = 0;
  // Evict columns 2 and 3.
  ASSERT_TRUE(
      table_.SetPlacement({true, true, false, false}, &migrated).ok());
  EXPECT_GT(migrated, 0u);
  EXPECT_EQ(table_.location(0), ColumnLocation::kDram);
  EXPECT_EQ(table_.location(2), ColumnLocation::kSecondary);
  ASSERT_NE(table_.sscg(), nullptr);
  EXPECT_EQ(table_.sscg()->layout().member_count(), 2u);
  // Values still correct from the SSCG.
  EXPECT_EQ(*table_.GetValue(2, 10, 1, nullptr), Value(15.0));
  EXPECT_EQ(*table_.GetValue(3, 4, 1, nullptr), Value("n1"));
  // DRAM footprint shrank.
  EXPECT_EQ(table_.MainDramBytes(),
            table_.ColumnDramBytes(0) + table_.ColumnDramBytes(1));
}

TEST_F(TableTest, PlacementRoundTripRestoresMrc) {
  table_.BulkLoad(TestRows(100));
  ASSERT_TRUE(table_.SetPlacement({true, false, false, true}, nullptr).ok());
  ASSERT_TRUE(table_.SetPlacement({true, true, true, true}, nullptr).ok());
  EXPECT_EQ(table_.sscg(), nullptr);
  for (RowId r = 0; r < 100; r += 17) {
    EXPECT_EQ(*table_.GetValue(1, r, 1, nullptr), Value(int32_t(r % 7)));
    EXPECT_EQ(*table_.GetValue(2, r, 1, nullptr), Value(double(r) * 1.5));
  }
}

TEST_F(TableTest, ReconstructRowAcrossLocations) {
  const auto rows = TestRows(50);
  table_.BulkLoad(rows);
  ASSERT_TRUE(table_.SetPlacement({true, false, false, false}, nullptr).ok());
  IoStats io;
  Row got = *table_.ReconstructRow(33, 1, &io);
  EXPECT_EQ(got, rows[33]);
  // One page read for the three SSCG attributes + DRAM touches for the MRC.
  EXPECT_EQ(io.page_reads + io.cache_hits, 1u);
  EXPECT_GT(io.dram_ns, 0u);
}

TEST_F(TableTest, ReconstructDeltaRow) {
  table_.BulkLoad(TestRows(5));
  Transaction txn = txns_.Begin();
  Row fresh{Value(int32_t{500}), Value(int32_t{5}), Value(9.5), Value("new")};
  ASSERT_TRUE(table_.Insert(txn, fresh).ok());
  txns_.Commit(&txn);
  EXPECT_EQ(*table_.ReconstructRow(5, 1, nullptr), fresh);
}

TEST_F(TableTest, MergeDeltaMovesRowsToMain) {
  table_.BulkLoad(TestRows(10));
  Transaction txn = txns_.Begin();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table_
                    .Insert(txn, Row{Value(int32_t{100 + i}),
                                     Value(int32_t{1}), Value(1.0),
                                     Value("d")})
                    .ok());
  }
  txns_.Commit(&txn);
  table_.MergeDelta();
  EXPECT_EQ(table_.main_row_count(), 15u);
  EXPECT_EQ(table_.delta_row_count(), 0u);
  EXPECT_EQ(*table_.GetValue(0, 12, 1, nullptr), Value(int32_t{102}));
}

TEST_F(TableTest, MergeDropsDeletedAndUncommitted) {
  table_.BulkLoad(TestRows(10));
  Transaction deleter = txns_.Begin();
  ASSERT_TRUE(table_.Delete(deleter, 3).ok());
  txns_.Commit(&deleter);
  Transaction in_flight = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(in_flight, Row{Value(int32_t{999}),
                                         Value(int32_t{0}), Value(0.0),
                                         Value("u")})
                  .ok());
  // Aborted rows must not survive the merge either.
  txns_.Abort(&in_flight);
  table_.MergeDelta();
  EXPECT_EQ(table_.main_row_count(), 9u);  // row 3 removed, insert dropped
  Transaction reader = txns_.Begin();
  for (RowId r = 0; r < table_.main_row_count(); ++r) {
    EXPECT_TRUE(table_.IsVisible(r, reader));
    EXPECT_NE(*table_.GetValue(0, r, 1, nullptr), Value(int32_t{3}));
    EXPECT_NE(*table_.GetValue(0, r, 1, nullptr), Value(int32_t{999}));
  }
}

TEST_F(TableTest, MergePreservesPlacement) {
  table_.BulkLoad(TestRows(20));
  ASSERT_TRUE(table_.SetPlacement({true, true, false, false}, nullptr).ok());
  Transaction txn = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(txn, Row{Value(int32_t{777}), Value(int32_t{2}),
                                   Value(2.5), Value("m")})
                  .ok());
  txns_.Commit(&txn);
  table_.MergeDelta();
  EXPECT_EQ(table_.location(2), ColumnLocation::kSecondary);
  EXPECT_EQ(table_.main_row_count(), 21u);
  EXPECT_EQ(*table_.GetValue(2, 20, 1, nullptr), Value(2.5));
  EXPECT_EQ(*table_.GetValue(3, 20, 1, nullptr), Value("m"));
}

TEST_F(TableTest, SelectivityEstimateIsInverseDistinct) {
  table_.BulkLoad(TestRows(100));
  // Column 1 has 7 distinct values.
  EXPECT_NEAR(table_.SelectivityEstimate(1), 1.0 / 7.0, 1e-12);
  // Column 0 is unique.
  EXPECT_NEAR(table_.SelectivityEstimate(0), 1.0 / 100.0, 1e-12);
}

TEST_F(TableTest, PlacementRequiresStore) {
  TransactionManager txns;
  Table untethered("u", TestSchema(), &txns);  // no store/buffers
  untethered.BulkLoad(TestRows(5));
  EXPECT_FALSE(untethered.SetPlacement({true, true, true, false}).ok());
  EXPECT_TRUE(untethered.SetPlacement({true, true, true, true}).ok());
}

}  // namespace
}  // namespace hytap

#include "workload/enterprise.h"

#include <gtest/gtest.h>

#include "selection/selectors.h"

namespace hytap {
namespace {

TEST(EnterpriseProfilesTest, TableIStatistics) {
  auto profiles = SapErpProfiles();
  ASSERT_EQ(profiles.size(), 5u);
  // Straight from Table I of the paper.
  EXPECT_EQ(profiles[0].table_name, "BSEG");
  EXPECT_EQ(profiles[0].attribute_count, 345u);
  EXPECT_EQ(profiles[0].filtered_count, 50u);
  EXPECT_EQ(profiles[0].hot_filtered_count, 18u);
  EXPECT_EQ(profiles[1].table_name, "ACDOCA");
  EXPECT_EQ(profiles[1].attribute_count, 338u);
  EXPECT_EQ(profiles[4].table_name, "COEP");
  EXPECT_EQ(profiles[4].hot_filtered_count, 6u);
}

TEST(EnterpriseWorkloadTest, ReproducesFilteredCounts) {
  for (const auto& profile : SapErpProfiles()) {
    Workload w = GenerateEnterpriseWorkload(profile, 42);
    EXPECT_EQ(w.column_count(), profile.attribute_count);
    WorkloadSkew skew = AnalyzeSkew(w);
    EXPECT_EQ(skew.filtered_count, profile.filtered_count)
        << profile.table_name;
    // Hot count is generated statistically; require the right ballpark.
    EXPECT_GE(skew.hot_filtered_count, profile.hot_filtered_count / 2)
        << profile.table_name;
    EXPECT_LE(skew.hot_filtered_count, profile.filtered_count)
        << profile.table_name;
  }
}

TEST(EnterpriseWorkloadTest, UnfilteredByteShareMatchesProfile) {
  const auto profile = BsegProfile();
  Workload w = GenerateEnterpriseWorkload(profile, 42);
  WorkloadSkew skew = AnalyzeSkew(w);
  // ~78% of BSEG bytes are never filtered (paper §III-B).
  EXPECT_NEAR(skew.unfiltered_byte_share, profile.unfiltered_byte_share,
              0.02);
}

TEST(EnterpriseWorkloadTest, DominantColumnShare) {
  const auto profile = BsegProfile();
  Workload w = GenerateEnterpriseWorkload(profile, 42);
  EXPECT_NEAR(w.column_sizes[0] / w.TotalBytes(),
              profile.dominant_column_share, 0.01);
  // The dominant column is heavily used.
  auto g = w.ColumnFrequencies();
  double max_g = 0;
  for (double x : g) max_g = std::max(max_g, x);
  EXPECT_GT(g[0], 0.3 * max_g);
}

TEST(EnterpriseWorkloadTest, FreeEvictionRateMatchesPaper) {
  // Fig. 3: evicting only never-filtered columns already frees ~78%.
  const auto profile = BsegProfile();
  Workload w = GenerateEnterpriseWorkload(profile, 42);
  SelectionProblem p =
      SelectionProblem::FromRelativeBudget(w, ScanCostParams{1, 100}, 1.0);
  auto full = SelectExplicit(p);
  // With an unlimited budget the explicit solution keeps only used columns.
  const double eviction_rate = 1.0 - full.dram_bytes / w.TotalBytes();
  EXPECT_GT(eviction_rate, 0.7);
  // And performance is unimpaired.
  CostModel model(w, p.params);
  EXPECT_NEAR(model.RelativePerformance(full.in_dram), 1.0, 1e-9);
}

TEST(EnterpriseWorkloadTest, PerformanceCliffWhenDominantColumnEvicted) {
  // Fig. 3: the drop beyond ~95% eviction is caused by the dominant column
  // no longer fitting the budget.
  const auto profile = BsegProfile();
  Workload w = GenerateEnterpriseWorkload(profile, 42);
  CostModel model(w, ScanCostParams{1, 100});
  const double above_cliff_budget = w.column_sizes[0] * 1.5;
  const double below_cliff_budget = w.column_sizes[0] * 0.5;
  SelectionProblem p;
  p.workload = &w;
  p.params = {1.0, 100.0};
  p.budget_bytes = above_cliff_budget;
  auto above = SelectExplicit(p);
  p.budget_bytes = below_cliff_budget;
  auto below = SelectExplicit(p);
  EXPECT_EQ(above.in_dram[0], 1);
  EXPECT_EQ(below.in_dram[0], 0);
  EXPECT_GT(model.RelativePerformance(above.in_dram),
            2.0 * model.RelativePerformance(below.in_dram));
}

TEST(EnterpriseWorkloadTest, Deterministic) {
  Workload a = GenerateEnterpriseWorkload(BsegProfile(), 7);
  Workload b = GenerateEnterpriseWorkload(BsegProfile(), 7);
  EXPECT_EQ(a.column_sizes, b.column_sizes);
}

TEST(EnterpriseDataTest, SchemaAndRows) {
  auto profile = SapErpProfiles()[4];  // COEP, 131 attrs: keep the test fast
  Schema schema = MakeEnterpriseSchema(profile);
  EXPECT_EQ(schema.size(), 131u);
  auto rows = GenerateEnterpriseRows(profile, 500, 3);
  ASSERT_EQ(rows.size(), 500u);
  for (const Row& row : rows) ASSERT_EQ(row.size(), 131u);
  // Column 0 is a unique document number.
  EXPECT_EQ(rows[17][0], Value(int32_t{17}));
}

}  // namespace
}  // namespace hytap

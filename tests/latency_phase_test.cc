#include "serving/latency_profiler.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/phases.h"
#include "common/trace.h"
#include "core/tiered_table.h"
#include "query/executor.h"
#include "serving/session_manager.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<TieredTable> MakeOrderline(int orders_per_district = 20) {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = orders_per_district;
  TieredTableOptions options;
  options.device = DeviceKind::kXpoint;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  return table;
}

void EvictPayloadColumns(TieredTable* table) {
  std::vector<bool> placement(10, true);
  for (ColumnId c : {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo}) {
    placement[c] = false;
  }
  ASSERT_TRUE(table->ApplyPlacement(placement).ok());
}

Query HeavyOlapQuery() {
  Query q;
  q.predicates.push_back(
      Predicate::AtLeast(kOlQuantity, Value(int32_t{0})));
  q.projections = {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo};
  return q;
}

Row MakeOrderlineRow(int32_t order) {
  return Row{Value(int32_t{order}), Value(int32_t{1}), Value(int32_t{1}),
             Value(int32_t{1}),     Value(int32_t{1}), Value(int32_t{1}),
             Value(int64_t{0}),     Value(int32_t{5}), Value(1.0),
             Value(std::string("x"))};
}

/// The core invariant (DESIGN.md §17): the phase vector of every execution
/// partitions its end-to-end simulated latency exactly — no phase double
/// charges, nothing escapes the decomposition. Exercised across the whole
/// query mix with faults armed so retries/backoff and failed executions hit
/// the same invariant.
TEST(LatencyPhaseTest, PhaseVectorSumsToSimulatedLatency) {
  auto table = MakeOrderline(60);
  EvictPayloadColumns(table.get());
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_rate = 0.05;
  faults.read_corruption_rate = 0.02;
  faults.latency_spike_rate = 0.02;
  table->store().ConfigureFaults(faults);

  const std::vector<Query> mix = {
      DeliveryQuery(1, 1, 5),       HeavyOlapQuery(),
      ChQuery19(1, 1, 500, 1, 5),   DeliveryQuery(2, 2, 9),
      ChQuery19(2, 100, 400, 2, 4), DeliveryQuery(1, 2, 12),
  };
  Transaction txn = table->Begin();
  uint64_t retry_charge = 0;
  uint64_t store_charge = 0;
  size_t failures = 0;
  for (size_t i = 0; i < 24; ++i) {
    PhaseVector phases;
    ExecOptions opts;
    opts.phases = &phases;
    const QueryResult r =
        table->executor().Execute(txn, mix[i % mix.size()], opts);
    EXPECT_EQ(phases.Sum(), r.io.TotalNs()) << "query " << i;
    EXPECT_EQ(phases[QueryPhase::kStoreIo] + phases[QueryPhase::kRetryBackoff],
              r.io.device_ns)
        << "query " << i;
    retry_charge += phases[QueryPhase::kRetryBackoff];
    store_charge += phases[QueryPhase::kStoreIo];
    if (!r.status.ok()) ++failures;
  }
  // The evicted columns force secondary-store reads and the fault schedule
  // at this seed produces retries, so both device-side phases are exercised.
  EXPECT_GT(store_charge, 0u);
  EXPECT_GT(retry_charge, 0u);

  // Error path: a fresh (cold-cache) table with a high error rate and a
  // tight retry budget makes executions fail outright — the invariant must
  // hold there too (failed reads charge no latency, so the partial accrual
  // still partitions exactly).
  auto flaky = MakeOrderline(60);
  EvictPayloadColumns(flaky.get());
  faults.read_error_rate = 0.6;
  flaky->store().ConfigureFaults(faults);
  flaky->store().set_max_read_retries(1);
  Transaction flaky_txn = flaky->Begin();
  for (size_t i = 0; i < 12; ++i) {
    PhaseVector phases;
    ExecOptions opts;
    opts.phases = &phases;
    const QueryResult r =
        flaky->executor().Execute(flaky_txn, mix[i % mix.size()], opts);
    EXPECT_EQ(phases.Sum(), r.io.TotalNs()) << "faulted query " << i;
    if (!r.status.ok()) ++failures;
  }
  EXPECT_GT(failures, 0u);
}

TEST(LatencyPhaseTest, KnobOffLeavesPhaseVectorUntouched) {
  auto table = MakeOrderline();
  EvictPayloadColumns(table.get());
  Transaction txn = table->Begin();
  PhaseVector phases;
  phases[QueryPhase::kDelta] = 77;  // sentinel: must not be cleared or grown
  ExecOptions opts;
  opts.phases = &phases;
  SetPhaseAccountingEnabled(false);
  const QueryResult r = table->executor().Execute(txn, HeavyOlapQuery(), opts);
  SetPhaseAccountingEnabled(true);
  ASSERT_TRUE(r.status.ok());
  EXPECT_GT(r.io.TotalNs(), 0u);
  EXPECT_EQ(phases[QueryPhase::kDelta], 77u);
  EXPECT_EQ(phases.Sum(), 77u);
}

TEST(LatencyPhaseTest, CancelledBeforeExecutionChargesNothing) {
  auto table = MakeOrderline();
  EvictPayloadColumns(table.get());
  std::atomic<bool> stop{true};
  PhaseVector phases;
  ExecOptions opts;
  opts.stop = &stop;
  opts.phases = &phases;
  Transaction txn = table->Begin();
  const QueryResult r = table->executor().Execute(txn, HeavyOlapQuery(), opts);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(phases.Sum(), r.io.TotalNs());
}

/// Delta rows must be charged to the delta phase, not scan/probe: insert
/// uncheckpointed rows and verify the executed query charges kDelta.
TEST(LatencyPhaseTest, DeltaScanChargesDeltaPhase) {
  auto table = MakeOrderline();
  Transaction w = table->Begin();
  for (int32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(table->Insert(w, MakeOrderlineRow(2000 + i)).ok());
  }
  table->Commit(&w);

  Query probe;
  probe.predicates.push_back(
      Predicate::AtLeast(kOlOId, Value(int32_t{1999})));
  Transaction txn = table->Begin();
  PhaseVector phases;
  ExecOptions opts;
  opts.phases = &phases;
  const QueryResult r = table->executor().Execute(txn, probe, opts);
  ASSERT_TRUE(r.status.ok());
  EXPECT_EQ(r.positions.size(), 8u);
  // All qualifying rows live in the delta; the main-partition index probe
  // finds nothing, so the charge lands in the delta phase.
  EXPECT_GT(phases[QueryPhase::kDelta], 0u);
  EXPECT_EQ(phases.Sum(), r.io.TotalNs());
}

/// Runs the fixed serving workload and returns the profiler's reports.
struct ServingRun {
  std::string text;
  std::string json;
  LatencyProfiler::ClassSnapshot oltp;
  LatencyProfiler::ClassSnapshot olap;
};

ServingRun RunServingWorkload(size_t max_sessions, uint32_t threads,
                              bool serial) {
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_rate = 0.02;
  faults.read_corruption_rate = 0.01;
  faults.latency_spike_rate = 0.01;
  const std::vector<Query> mix = {
      DeliveryQuery(1, 1, 5),       HeavyOlapQuery(),
      ChQuery19(1, 1, 500, 1, 5),   DeliveryQuery(2, 2, 9),
      ChQuery19(2, 100, 400, 2, 4), DeliveryQuery(1, 2, 12),
  };
  constexpr size_t kQueries = 36;

  auto table = MakeOrderline();
  EvictPayloadColumns(table.get());
  table->store().ConfigureFaults(faults);
  SessionOptions so;
  so.max_sessions = max_sessions;
  so.default_threads = threads;
  SessionManager& sm = table->EnableServing(so);
  LatencyProfiler::Options po;
  po.oltp_slo_ns = 1;  // every executed OLTP ticket breaches -> attributions
  po.olap_slo_ns = 2'000'000'000;
  LatencyProfiler profiler(po);
  sm.set_latency_profiler(&profiler);

  std::vector<SessionHandle> handles;
  for (size_t i = 0; i < kQueries; ++i) {
    if (i % 8 == 3) {
      Transaction w = table->Begin();
      EXPECT_TRUE(table->Insert(w, MakeOrderlineRow(1000 + int32_t(i))).ok());
      table->Commit(&w);
    }
    SubmitOptions opts;
    opts.query_class = (i % 2 == 0) ? QueryClass::kOltp : QueryClass::kOlap;
    auto s = sm.Submit(mix[i % mix.size()], opts);
    EXPECT_TRUE(s.ok());
    if (serial) {
      (*s)->Await();
    } else {
      handles.push_back(*s);
    }
  }
  for (const SessionHandle& s : handles) s->Await();
  sm.Drain();
  ServingRun run;
  run.text = profiler.ReportText();
  run.json = profiler.ReportJson();
  run.oltp = profiler.Snapshot(QueryClass::kOltp);
  run.olap = profiler.Snapshot(QueryClass::kOlap);
  sm.set_latency_profiler(nullptr);
  return run;
}

/// The determinism tentpole for the profiler: phase reports and tail
/// attributions are computed purely from simulated time in ticket order, so
/// at every execution-thread count a serial single-worker run and a
/// concurrent 4-worker run render byte-identical reports under an armed
/// fault schedule (the worker count must never leak into attribution).
TEST(LatencyPhaseTest, ReportsBitIdenticalAcrossWorkerCounts) {
  for (uint32_t threads : {1u, 2u, 4u}) {
    const ServingRun baseline =
        RunServingWorkload(1, threads, /*serial=*/true);
    EXPECT_FALSE(baseline.text.empty());
    EXPECT_EQ(baseline.oltp.observations + baseline.olap.observations, 36u);
    EXPECT_EQ(baseline.oltp.cancelled, 0u);
    EXPECT_EQ(baseline.oltp.shed, 0u);
    // Sub-invariant: per class, the phase decomposition sums to the summed
    // latency.
    EXPECT_EQ(baseline.oltp.phase_sum.Sum(), baseline.oltp.latency_sum_ns);
    EXPECT_EQ(baseline.olap.phase_sum.Sum(), baseline.olap.latency_sum_ns);
    EXPECT_GT(baseline.oltp.tail, 0u);  // 1 ns OLTP objective: all breach

    for (size_t workers : {2u, 4u}) {
      const ServingRun concurrent =
          RunServingWorkload(workers, threads, /*serial=*/false);
      EXPECT_EQ(baseline.text, concurrent.text)
          << "report diverged at workers=" << workers
          << " threads=" << threads;
      EXPECT_EQ(baseline.json, concurrent.json)
          << "JSON diverged at workers=" << workers
          << " threads=" << threads;
    }
  }
}

/// Shed and queued-cancelled tickets never execute: the profiler must count
/// them (shed bucket) with a zero phase vector and zero latency.
TEST(LatencyPhaseTest, ShedAndQueuedCancelObserveZeroPhases) {
  auto table = MakeOrderline(60);
  EvictPayloadColumns(table.get());
  SessionOptions so;
  so.max_sessions = 1;
  SessionManager& sm = table->EnableServing(so);
  LatencyProfiler profiler;
  sm.set_latency_profiler(&profiler);

  // Shed: deadline already expired when the worker picks it up.
  SubmitOptions expired;
  expired.deadline_ns = SessionManager::NowNs() - 1;
  auto shed = sm.Submit(DeliveryQuery(1, 1, 3), expired);
  ASSERT_TRUE(shed.ok());
  EXPECT_EQ((*shed)->Await().status.code(), StatusCode::kDeadlineExceeded);

  // Queued cancel: block the only worker, cancel the queued victim.
  auto blocker = sm.Submit(HeavyOlapQuery());
  ASSERT_TRUE(blocker.ok());
  auto victim = sm.Submit(DeliveryQuery(1, 1, 6));
  ASSERT_TRUE(victim.ok());
  (*victim)->Cancel();
  EXPECT_EQ((*victim)->Await().status.code(), StatusCode::kCancelled);
  EXPECT_TRUE((*blocker)->Await().status.ok());
  sm.Drain();

  const auto oltp = profiler.Snapshot(QueryClass::kOltp);
  const auto olap = profiler.Snapshot(QueryClass::kOlap);
  EXPECT_EQ(oltp.shed, 0u);
  EXPECT_EQ(olap.shed, 2u);  // default class is kOlap for both terminals
  EXPECT_EQ(olap.executed, 1u);  // the blocker
  // Shed tickets contributed nothing to the deterministic aggregates.
  EXPECT_EQ(olap.phase_sum.Sum(), olap.latency_sum_ns);
  sm.set_latency_profiler(nullptr);
}

/// Cancelled mid-execution: the invariant still holds for the partial
/// accrual, but the sample is excluded from the deterministic aggregates
/// (its magnitude depends on where the stop token landed).
TEST(LatencyPhaseTest, MidExecutionCancelExcludedFromAggregates) {
  LatencyProfiler profiler;
  PhaseVector partial;
  partial[QueryPhase::kScanProbe] = 500;
  partial[QueryPhase::kStoreIo] = 300;
  profiler.Observe(/*ticket=*/0, QueryClass::kOlap, StatusCode::kCancelled,
                   /*executed=*/true, partial.Sum(), partial,
                   /*trace=*/nullptr, /*window=*/1, /*sim_ns=*/800);
  PhaseVector full;
  full[QueryPhase::kScanProbe] = 1000;
  profiler.Observe(/*ticket=*/1, QueryClass::kOlap, StatusCode::kOk,
                   /*executed=*/true, 1000, full, nullptr, 1, 1800);
  const auto olap = profiler.Snapshot(QueryClass::kOlap);
  EXPECT_EQ(olap.observations, 2u);
  EXPECT_EQ(olap.cancelled, 1u);
  EXPECT_EQ(olap.executed, 1u);
  EXPECT_EQ(olap.latency_sum_ns, 1000u);
  EXPECT_EQ(olap.phase_sum.Sum(), 1000u);
  EXPECT_EQ(olap.phase_sum[QueryPhase::kStoreIo], 0u);
}

/// Tail attribution: a breaching ticket gets phases ranked by charge and a
/// critical-path walk down its trace tree picking the child with the
/// largest inclusive simulated time at every level.
TEST(LatencyPhaseTest, AttributionRanksPhasesAndWalksCriticalPath) {
  LatencyProfiler::Options po;
  po.oltp_slo_ns = 100;  // tiny objective so the sample below breaches
  LatencyProfiler profiler(po);

  TraceSpan root;
  root.name = "execute";
  root.simulated_ns = 900;
  TraceSpan fast;
  fast.name = "delta_scan";
  fast.simulated_ns = 100;
  TraceSpan slow;
  slow.name = "main_scan";
  slow.simulated_ns = 700;
  slow.annotations.emplace_back("est_selectivity", "0.10");
  slow.annotations.emplace_back("actual_selectivity", "0.85");
  TraceSpan leaf;
  leaf.name = "probe";
  leaf.simulated_ns = 400;
  slow.children.push_back(leaf);
  root.children.push_back(fast);
  root.children.push_back(slow);

  PhaseVector phases;
  phases[QueryPhase::kScanProbe] = 300;
  phases[QueryPhase::kStoreIo] = 500;
  phases[QueryPhase::kRetryBackoff] = 100;
  profiler.Observe(0, QueryClass::kOltp, StatusCode::kOk, true, 900, phases,
                   &root, 1, 900);

  const auto attributions = profiler.Attributions();
  ASSERT_EQ(attributions.size(), 1u);
  const auto& a = attributions[0];
  EXPECT_TRUE(a.slo_breach);
  EXPECT_EQ(a.dominant, QueryPhase::kStoreIo);
  ASSERT_EQ(a.ranked.size(), kQueryPhaseCount);
  EXPECT_EQ(a.ranked[0], QueryPhase::kStoreIo);
  EXPECT_EQ(a.ranked[1], QueryPhase::kScanProbe);
  EXPECT_EQ(a.ranked[2], QueryPhase::kRetryBackoff);
  // Critical path follows execute -> main_scan (700 > 100) -> probe.
  ASSERT_EQ(a.critical_path.size(), 3u);
  EXPECT_EQ(a.critical_path[0].name, "execute");
  EXPECT_EQ(a.critical_path[0].exclusive_ns, 100u);  // 900 - (100 + 700)
  EXPECT_EQ(a.critical_path[1].name, "main_scan");
  EXPECT_EQ(a.critical_path[1].est_selectivity, "0.10");
  EXPECT_EQ(a.critical_path[1].actual_selectivity, "0.85");
  EXPECT_EQ(a.critical_path[2].name, "probe");
  EXPECT_EQ(a.critical_path[2].inclusive_ns, 400u);
}

/// The attribution cap drops excess attributions loudly, never silently.
TEST(LatencyPhaseTest, AttributionCapCountsDropped) {
  LatencyProfiler::Options po;
  po.oltp_slo_ns = 1;
  po.max_attributions = 2;
  LatencyProfiler profiler(po);
  for (uint64_t t = 0; t < 5; ++t) {
    PhaseVector phases;
    phases[QueryPhase::kScanProbe] = 10 + t;
    profiler.Observe(t, QueryClass::kOltp, StatusCode::kOk, true, 10 + t,
                     phases, nullptr, 1, 100 * (t + 1));
  }
  EXPECT_EQ(profiler.Attributions().size(), 2u);
  EXPECT_EQ(profiler.attributions_dropped(), 3u);
  EXPECT_EQ(profiler.Snapshot(QueryClass::kOltp).tail, 5u);
}

}  // namespace
}  // namespace hytap

#include "solver/branch_and_bound.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace hytap {
namespace {

TEST(KnapsackTest, EmptyAndDegenerate) {
  EXPECT_DOUBLE_EQ(SolveKnapsack({}, 10.0).profit, 0.0);
  std::vector<KnapsackItem> items{{5.0, 3.0}};
  EXPECT_DOUBLE_EQ(SolveKnapsack(items, 0.0).profit, 0.0);
  EXPECT_DOUBLE_EQ(SolveKnapsack(items, 2.0).profit, 0.0);  // doesn't fit
}

TEST(KnapsackTest, TakesEverythingWhenItFits) {
  std::vector<KnapsackItem> items{{5, 3}, {7, 4}, {2, 1}};
  auto sol = SolveKnapsack(items, 100.0);
  EXPECT_DOUBLE_EQ(sol.profit, 14.0);
  EXPECT_EQ(sol.take, (std::vector<uint8_t>{1, 1, 1}));
}

TEST(KnapsackTest, ClassicInstance) {
  // Items (profit, weight): optimal for capacity 10 is {2,3}: profit 11.
  std::vector<KnapsackItem> items{{6, 6}, {5, 4}, {6, 5}, {1, 3}};
  auto sol = SolveKnapsack(items, 10.0);
  EXPECT_DOUBLE_EQ(sol.profit, 11.0);
  EXPECT_DOUBLE_EQ(sol.weight, 9.0);
  EXPECT_TRUE(sol.optimal);
}

TEST(KnapsackTest, GreedyDensityIsNotOptimalHere) {
  // Density order would take (6,5) then nothing else of value; optimum takes
  // the two medium items.
  std::vector<KnapsackItem> items{{10, 5}, {9, 4.9}, {9, 4.9}};
  auto sol = SolveKnapsack(items, 9.8);
  EXPECT_DOUBLE_EQ(sol.profit, 18.0);
}

TEST(KnapsackTest, RespectsCapacityExactly) {
  std::vector<KnapsackItem> items{{1, 2}, {1, 2}, {1, 2}};
  auto sol = SolveKnapsack(items, 4.0);
  EXPECT_DOUBLE_EQ(sol.profit, 2.0);
  EXPECT_DOUBLE_EQ(sol.weight, 4.0);
}

TEST(KnapsackTest, NodeBudgetExhaustionReported) {
  Rng rng(3);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 40; ++i) {
    items.push_back({rng.NextDouble(1.0, 2.0), rng.NextDouble(1.0, 2.0)});
  }
  auto sol = SolveKnapsack(items, 30.0, /*max_nodes=*/10);
  EXPECT_FALSE(sol.optimal);
  // Incumbent is still a valid (possibly suboptimal) solution.
  EXPECT_LE(sol.weight, 30.0 + 1e-9);
}

// Property: B&B matches exhaustive enumeration on random small instances.
class KnapsackPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KnapsackPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const size_t n = 2 + rng.NextBounded(14);  // up to 15 items
  std::vector<KnapsackItem> items;
  double total_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    KnapsackItem item{rng.NextDouble(0.1, 10.0), rng.NextDouble(0.1, 10.0)};
    total_weight += item.weight;
    items.push_back(item);
  }
  const double capacity = rng.NextDouble(0.0, total_weight);
  auto sol = SolveKnapsack(items, capacity);
  ASSERT_TRUE(sol.optimal);
  // Brute force.
  double best = 0.0;
  for (uint32_t mask = 0; mask < (1u << n); ++mask) {
    double profit = 0.0, weight = 0.0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (1u << i)) {
        profit += items[i].profit;
        weight += items[i].weight;
      }
    }
    if (weight <= capacity && profit > best) best = profit;
  }
  EXPECT_NEAR(sol.profit, best, 1e-9);
  EXPECT_LE(sol.weight, capacity + 1e-9);
  // The reported take-vector is consistent with the reported profit/weight.
  double check_profit = 0.0, check_weight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (sol.take[i]) {
      check_profit += items[i].profit;
      check_weight += items[i].weight;
    }
  }
  EXPECT_NEAR(check_profit, sol.profit, 1e-9);
  EXPECT_NEAR(check_weight, sol.weight, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KnapsackPropertyTest,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

TEST(KnapsackTest, LargeInstanceSolvesQuickly) {
  // Random instances with correlated profits stay tractable for B&B.
  Rng rng(9);
  std::vector<KnapsackItem> items;
  for (int i = 0; i < 2000; ++i) {
    const double w = rng.NextDouble(1.0, 100.0);
    items.push_back({w * rng.NextDouble(0.8, 1.2), w});
  }
  auto sol = SolveKnapsack(items, 20000.0);
  EXPECT_TRUE(sol.optimal);
  EXPECT_GT(sol.profit, 0.0);
}

TEST(KnapsackDeathTest, NonPositiveItemAborts) {
  std::vector<KnapsackItem> items{{0.0, 1.0}};
  EXPECT_DEATH(SolveKnapsack(items, 1.0), "positive");
}

}  // namespace
}  // namespace hytap

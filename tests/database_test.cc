// Tests of the multi-table database layer: shared transactions, hash join,
// auto-merge, and the global (cross-table) advisor of paper §III-G.

#include "core/database.h"

#include <gtest/gtest.h>

#include "core/global_advisor.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<Database> MakeTpccDatabase() {
  auto db = std::make_unique<Database>();
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 3;
  params.orders_per_district = 20;
  params.items = 200;
  Table* orderline = db->CreateTable("orderline", OrderlineSchema());
  orderline->BulkLoad(GenerateOrderlineRows(params));
  Table* item = db->CreateTable("item", ItemSchema());
  item->BulkLoad(GenerateItemRows(params.items, 11));
  return db;
}

TEST(DatabaseTest, CreateAndLookupTables) {
  auto db = MakeTpccDatabase();
  EXPECT_EQ(db->table_count(), 2u);
  EXPECT_NE(db->GetTable("orderline"), nullptr);
  EXPECT_NE(db->GetTable("item"), nullptr);
  EXPECT_EQ(db->GetTable("nope"), nullptr);
  EXPECT_EQ(db->tables().size(), 2u);
}

TEST(DatabaseTest, CrossTableSnapshotConsistency) {
  auto db = MakeTpccDatabase();
  Transaction writer = db->Begin();
  ASSERT_TRUE(db->GetTable("item")
                  ->Insert(writer, Row{Value(int32_t{999}), Value("new"),
                                       Value(50.0), Value("d")})
                  .ok());
  Transaction reader_before = db->Begin();
  db->Commit(&writer);
  Transaction reader_after = db->Begin();
  Query q;
  q.predicates.push_back(Predicate::Equals(kIId, Value(int32_t{999})));
  EXPECT_TRUE(db->Execute(reader_before, "item", q).positions.empty());
  EXPECT_EQ(db->Execute(reader_after, "item", q).positions.size(), 1u);
}

TEST(DatabaseTest, ExecuteRecordsPerTablePlanCache) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  db->Execute(txn, "orderline", DeliveryQuery(1, 1, 1));
  db->Execute(txn, "orderline", DeliveryQuery(1, 2, 2));
  EXPECT_EQ(db->plan_cache("orderline").total_executions(), 2u);
  EXPECT_EQ(db->plan_cache("item").total_executions(), 0u);
}

TEST(DatabaseTest, HashJoinMatchesNaive) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  ChQuery19Join join = MakeChQuery19Join(1, 1, 5, 10.0, 60.0);
  JoinResult result =
      db->ExecuteJoin(txn, "orderline", join.orderline, "item", join.item,
                      join.spec);
  // Naive evaluation.
  const Table* ol = db->GetTable("orderline");
  const Table* item = db->GetTable("item");
  size_t expected = 0;
  for (RowId o = 0; o < ol->row_count(); ++o) {
    bool ok = true;
    for (const Predicate& p : join.orderline.predicates) {
      if (!p.Matches(*ol->GetValue(p.column, o, 1, nullptr))) ok = false;
    }
    if (!ok) continue;
    const Value key = *ol->GetValue(kOlIId, o, 1, nullptr);
    for (RowId i = 0; i < item->row_count(); ++i) {
      if (*item->GetValue(kIId, i, 1, nullptr) != key) continue;
      bool iok = true;
      for (const Predicate& p : join.item.predicates) {
        if (!p.Matches(*item->GetValue(p.column, i, 1, nullptr))) iok = false;
      }
      if (iok) ++expected;
    }
  }
  EXPECT_EQ(result.matches.size(), expected);
  EXPECT_GT(expected, 0u);
  ASSERT_EQ(result.rows.size(), expected);
  // Projections: ol_amount then i_price; price respects the band.
  for (const Row& row : result.rows) {
    EXPECT_GE(row[1].AsDouble(), 10.0);
    EXPECT_LE(row[1].AsDouble(), 60.0);
  }
}

TEST(DatabaseTest, JoinResultsStableUnderTiering) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  ChQuery19Join join = MakeChQuery19Join(2, 2, 8, 5.0, 80.0);
  JoinResult before = db->ExecuteJoin(txn, "orderline", join.orderline,
                                      "item", join.item, join.spec);
  // Evict the join key and the projected amount on the orderline side, plus
  // the price on the item side.
  std::vector<bool> ol_placement(10, true);
  ol_placement[kOlIId] = false;
  ol_placement[kOlAmount] = false;
  ASSERT_TRUE(db->GetTable("orderline")->SetPlacement(ol_placement).ok());
  std::vector<bool> item_placement(4, true);
  item_placement[kIPrice] = false;
  item_placement[kIData] = false;
  ASSERT_TRUE(db->GetTable("item")->SetPlacement(item_placement).ok());
  JoinResult after = db->ExecuteJoin(txn, "orderline", join.orderline,
                                     "item", join.item, join.spec);
  EXPECT_EQ(before.matches, after.matches);
  EXPECT_GT(after.io.device_ns, 0u);  // tiered access paid device time
}

TEST(DatabaseTest, JoinRecordsJoinColumnsInPlanCache) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  ChQuery19Join join = MakeChQuery19Join(1, 1, 5, 10.0, 60.0);
  db->ExecuteJoin(txn, "orderline", join.orderline, "item", join.item,
                  join.spec);
  auto g = db->plan_cache("orderline").ColumnFrequencies(
      *db->GetTable("orderline"));
  EXPECT_GT(g[kOlIId], 0.0);  // the join key counts as accessed
}

TEST(DatabaseTest, MaybeMergeHonorsThreshold) {
  DatabaseOptions options;
  options.merge_threshold = 0.5;
  Database db(options);
  Schema schema;
  schema.push_back({"v", DataType::kInt32, 0});
  Table* t = db.CreateTable("t", schema);
  std::vector<Row> rows;
  for (int i = 0; i < 10; ++i) rows.push_back(Row{Value(int32_t(i))});
  t->BulkLoad(rows);
  Transaction txn = db.Begin();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(t->Insert(txn, Row{Value(int32_t(100 + i))}).ok());
  }
  db.Commit(&txn);
  EXPECT_FALSE(db.MaybeMerge("t"));  // 4 < 0.5 * 10
  Transaction txn2 = db.Begin();
  ASSERT_TRUE(t->Insert(txn2, Row{Value(int32_t{200})}).ok());
  db.Commit(&txn2);
  EXPECT_TRUE(db.MaybeMerge("t"));  // 5 >= 0.5 * 10
  EXPECT_EQ(t->main_row_count(), 15u);
  EXPECT_EQ(t->delta_row_count(), 0u);
}

TEST(GlobalAdvisorTest, JointBudgetFlowsToHotTable) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  // Only ORDERLINE gets load; ITEM is never queried.
  for (int i = 0; i < 50; ++i) {
    db->Execute(txn, "orderline", DeliveryQuery(1 + i % 2, 1 + i % 3,
                                                1 + i % 20));
  }
  GlobalAdvisor advisor(ScanCostParams{1.0, 100.0});
  GlobalRecommendation rec = advisor.RecommendRelative(db.get(), 0.3);
  ASSERT_EQ(rec.placements.size(), 2u);
  double item_dram = 0, orderline_dram = 0;
  for (const TablePlacement& p : rec.placements) {
    if (p.table == "item") item_dram = p.dram_bytes;
    if (p.table == "orderline") orderline_dram = p.dram_bytes;
  }
  // The unqueried table gets nothing; the hot table gets the budget.
  EXPECT_EQ(item_dram, 0.0);
  EXPECT_GT(orderline_dram, 0.0);
}

TEST(GlobalAdvisorTest, ApplyEvictsAcrossTables) {
  auto db = MakeTpccDatabase();
  Transaction txn = db->Begin();
  for (int i = 0; i < 20; ++i) {
    db->Execute(txn, "orderline", DeliveryQuery(1, 1, 1 + i % 20));
    Query price_scan;
    price_scan.predicates.push_back(
        Predicate::Between(kIPrice, Value(10.0), Value(20.0)));
    db->Execute(txn, "item", price_scan);
  }
  GlobalAdvisor advisor(ScanCostParams{1.0, 100.0});
  auto moved = advisor.Apply(db.get(), /*budget=*/1.0);  // ~nothing fits
  ASSERT_TRUE(moved.ok());
  EXPECT_GT(*moved, 0u);
  EXPECT_NE(db->GetTable("orderline")->sscg(), nullptr);
  EXPECT_NE(db->GetTable("item")->sscg(), nullptr);
  // Queries still work on both tables.
  Transaction txn2 = db->Begin();
  EXPECT_FALSE(
      db->Execute(txn2, "orderline", DeliveryQuery(1, 1, 5)).positions
          .empty());
}

}  // namespace
}  // namespace hytap

#include "tiering/device_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/types.h"

namespace hytap {
namespace {

TEST(DeviceModelTest, ProfileNames) {
  EXPECT_EQ(GetDeviceProfile(DeviceKind::kCssd).name, "CSSD");
  EXPECT_EQ(GetDeviceProfile(DeviceKind::kHdd).name, "HDD");
  EXPECT_STREQ(DeviceKindName(DeviceKind::kXpoint), "3DXPoint");
}

TEST(DeviceModelTest, XpointHasTenfoldLowerLatencyThanNand) {
  // The paper's motivation for 3D XPoint: ~10x lower random latency at
  // shallow queues than NAND devices.
  const auto xpoint = GetDeviceProfile(DeviceKind::kXpoint);
  const auto cssd = GetDeviceProfile(DeviceKind::kCssd);
  const auto essd = GetDeviceProfile(DeviceKind::kEssd);
  EXPECT_LE(xpoint.random_read_ns_qd1 * 8, cssd.random_read_ns_qd1);
  EXPECT_LE(xpoint.random_read_ns_qd1 * 8, essd.random_read_ns_qd1);
}

TEST(DeviceModelTest, MeanLatencyAtQd1EqualsProfile) {
  for (DeviceKind kind : kSecondaryDevices) {
    DeviceModel model(kind);
    EXPECT_EQ(model.MeanRandomReadNs(1),
              model.profile().random_read_ns_qd1)
        << DeviceKindName(kind);
  }
}

TEST(DeviceModelTest, SsdLatencyFlatUntilSaturation) {
  DeviceModel cssd(DeviceKind::kCssd);
  // Below the saturation queue depth each requester still sees ~QD1 latency.
  EXPECT_EQ(cssd.MeanRandomReadNs(4), cssd.profile().random_read_ns_qd1);
  // Far beyond saturation, queueing inflates the observed latency.
  EXPECT_GT(cssd.MeanRandomReadNs(256), cssd.profile().random_read_ns_qd1);
}

TEST(DeviceModelTest, HddRandomLatencyGrowsWithQueueDepth) {
  DeviceModel hdd(DeviceKind::kHdd);
  EXPECT_GT(hdd.MeanRandomReadNs(8), hdd.MeanRandomReadNs(1));
  EXPECT_GT(hdd.MeanRandomReadNs(32), hdd.MeanRandomReadNs(8));
}

TEST(DeviceModelTest, SequentialFasterThanRandomPerByte) {
  for (DeviceKind kind : kSecondaryDevices) {
    DeviceModel model(kind);
    const uint64_t pages = 10000;
    EXPECT_LT(model.SequentialReadNs(pages, 1),
              model.RandomReadBatchNs(pages, 1))
        << DeviceKindName(kind);
  }
}

TEST(DeviceModelTest, HddSequentialCollapsesUnderConcurrency) {
  // Paper §IV-C: "HDDs perform well for pure sequential requests but
  // significantly slow down with concurrent requests by multiple threads."
  DeviceModel hdd(DeviceKind::kHdd);
  const uint64_t pages = 100000;
  EXPECT_GT(hdd.SequentialReadNs(pages, 8),
            3 * hdd.SequentialReadNs(pages, 1));
}

TEST(DeviceModelTest, SsdRandomBatchScalesWithThreads) {
  // NAND devices need deep queues for full throughput (Fig. 9).
  DeviceModel cssd(DeviceKind::kCssd);
  const uint64_t pages = 100000;
  EXPECT_LT(cssd.RandomReadBatchNs(pages, 32),
            cssd.RandomReadBatchNs(pages, 1) / 8);
}

TEST(DeviceModelTest, EssdNeedsDeeperQueuesThanXpoint) {
  // ESSD reaches its ceiling only at deep queues; XPoint is fast already at
  // QD1 (paper §IV).
  DeviceModel essd(DeviceKind::kEssd);
  DeviceModel xpoint(DeviceKind::kXpoint);
  const uint64_t pages = 100000;
  const double essd_gain = double(essd.RandomReadBatchNs(pages, 1)) /
                           double(essd.RandomReadBatchNs(pages, 32));
  const double xpoint_gain = double(xpoint.RandomReadBatchNs(pages, 1)) /
                             double(xpoint.RandomReadBatchNs(pages, 32));
  EXPECT_GT(essd_gain, xpoint_gain);
}

TEST(DeviceModelTest, JitteredLatencyNearMean) {
  DeviceModel xpoint(DeviceKind::kXpoint);
  Rng rng(5);
  const uint64_t mean = xpoint.MeanRandomReadNs(1);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t lat = xpoint.RandomReadLatencyNs(1, rng);
    EXPECT_GT(lat, mean / 2);
    sum += double(lat);
  }
  EXPECT_NEAR(sum / 5000.0, double(mean), 0.1 * double(mean));
}

TEST(DeviceModelTest, NandTailHeavierThanXpoint) {
  // Fig. 7: 99th-percentile latencies separate NAND from 3D XPoint.
  Rng rng1(5), rng2(5);
  DeviceModel cssd(DeviceKind::kCssd);
  DeviceModel xpoint(DeviceKind::kXpoint);
  auto tail_ratio = [](DeviceModel& m, Rng& rng) {
    std::vector<uint64_t> lats;
    for (int i = 0; i < 20000; ++i) lats.push_back(m.RandomReadLatencyNs(1, rng));
    std::sort(lats.begin(), lats.end());
    const double p99 = double(lats[lats.size() * 99 / 100]);
    const double p50 = double(lats[lats.size() / 2]);
    return p99 / p50;
  };
  EXPECT_GT(tail_ratio(cssd, rng1), tail_ratio(xpoint, rng2));
}

TEST(DeviceModelTest, BatchNeverFasterThanOneServiceTime) {
  for (DeviceKind kind : kSecondaryDevices) {
    DeviceModel model(kind);
    EXPECT_GE(model.RandomReadBatchNs(1, 64),
              model.profile().random_read_ns_qd1);
  }
}

}  // namespace
}  // namespace hytap

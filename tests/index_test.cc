#include "storage/index.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "query/executor.h"
#include "storage/table.h"

namespace hytap {
namespace {

TEST(OrderPreservingEncodingTest, IntegersSortCorrectly) {
  const int32_t values[] = {-1000000, -1, 0, 1, 42, 1000000};
  for (size_t a = 0; a + 1 < 6; ++a) {
    EXPECT_LT(EncodeOrderPreserving(Value(values[a])),
              EncodeOrderPreserving(Value(values[a + 1])));
  }
}

TEST(OrderPreservingEncodingTest, Int64AndDoubles) {
  EXPECT_LT(EncodeOrderPreserving(Value(int64_t{-5})),
            EncodeOrderPreserving(Value(int64_t{3})));
  const double doubles[] = {-1e300, -2.5, -0.0, 0.5, 3.25, 1e300};
  for (size_t a = 0; a + 1 < 6; ++a) {
    EXPECT_LE(EncodeOrderPreserving(Value(doubles[a])),
              EncodeOrderPreserving(Value(doubles[a + 1])));
  }
  EXPECT_LT(EncodeOrderPreserving(Value(1.5f)),
            EncodeOrderPreserving(Value(2.5f)));
}

TEST(OrderPreservingEncodingTest, StringsSortCorrectly) {
  EXPECT_LT(EncodeOrderPreserving(Value("abc")),
            EncodeOrderPreserving(Value("abd")));
  EXPECT_LT(EncodeOrderPreserving(Value("ab")),
            EncodeOrderPreserving(Value("abc")));
  EXPECT_LT(EncodeOrderPreserving(Value("")),
            EncodeOrderPreserving(Value("a")));
}

TEST(OrderPreservingEncodingTest, RandomizedIntegersProperty) {
  Rng rng(31);
  for (int trial = 0; trial < 500; ++trial) {
    const int64_t a = rng.NextInt(-1000000, 1000000);
    const int64_t b = rng.NextInt(-1000000, 1000000);
    const auto ea = EncodeOrderPreserving(Value(a));
    const auto eb = EncodeOrderPreserving(Value(b));
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(SingleColumnIndexTest, LookupAndRange) {
  std::vector<Value> values;
  for (int32_t v : {5, 3, 5, 1, 9, 3, 7}) values.emplace_back(v);
  SingleColumnIndex index(0, DataType::kInt32, values);
  EXPECT_EQ(index.size(), 7u);
  EXPECT_EQ(index.Lookup({Value(int32_t{5})}), (PositionList{0, 2}));
  EXPECT_EQ(index.Lookup({Value(int32_t{1})}), (PositionList{3}));
  EXPECT_TRUE(index.Lookup({Value(int32_t{4})}).empty());
  PositionList out;
  Value lo(int32_t{3}), hi(int32_t{7});
  ASSERT_TRUE(index.RangeLookup(&lo, &hi, &out));
  EXPECT_EQ(out, (PositionList{0, 1, 2, 5, 6}));
  out.clear();
  ASSERT_TRUE(index.RangeLookup(nullptr, &lo, &out));  // <= 3
  EXPECT_EQ(out, (PositionList{1, 3, 5}));
}

TEST(CompositeIndexTest, ExactMatch) {
  // Key: (warehouse, district).
  std::vector<std::vector<Value>> columns(2);
  for (int32_t w : {1, 1, 2, 2, 1}) columns[0].emplace_back(w);
  for (int32_t d : {1, 2, 1, 2, 1}) columns[1].emplace_back(d);
  CompositeIndex index({0, 1}, {DataType::kInt32, DataType::kInt32},
                       columns);
  EXPECT_EQ(index.Lookup({Value(int32_t{1}), Value(int32_t{1})}),
            (PositionList{0, 4}));
  EXPECT_EQ(index.Lookup({Value(int32_t{2}), Value(int32_t{2})}),
            (PositionList{3}));
  EXPECT_TRUE(index.Lookup({Value(int32_t{3}), Value(int32_t{1})}).empty());
  EXPECT_FALSE(index.RangeLookup(nullptr, nullptr, nullptr));
}

TEST(CompositeIndexTest, StringKeyPartsUnambiguous) {
  // ("a", "bc") must not collide with ("ab", "c").
  std::vector<std::vector<Value>> columns(2);
  columns[0] = {Value("a"), Value("ab")};
  columns[1] = {Value("bc"), Value("c")};
  CompositeIndex index({0, 1}, {DataType::kString, DataType::kString},
                       columns);
  EXPECT_EQ(index.Lookup({Value("a"), Value("bc")}), (PositionList{0}));
  EXPECT_EQ(index.Lookup({Value("ab"), Value("c")}), (PositionList{1}));
}

// --- integration with Table and the executor ---

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"payload", DataType::kInt32, 0});
  return schema;
}

class IndexedTableTest : public ::testing::Test {
 protected:
  IndexedTableTest()
      : store_(DeviceKind::kXpoint),
        buffers_(&store_, 16),
        table_("t", TestSchema(), &txns_, &store_, &buffers_) {
    std::vector<Row> rows;
    for (int r = 0; r < 500; ++r) {
      rows.push_back(Row{Value(int32_t(r)), Value(int32_t(r % 10)),
                         Value(int32_t(r % 50))});
    }
    table_.BulkLoad(rows);
  }
  TransactionManager txns_;
  SecondaryStore store_;
  BufferManager buffers_;
  Table table_;
};

TEST_F(IndexedTableTest, CreateAndFind) {
  ASSERT_TRUE(table_.CreateIndex({0}).ok());
  ASSERT_TRUE(table_.CreateIndex({1, 2}).ok());
  EXPECT_NE(table_.FindIndex(0), nullptr);
  EXPECT_EQ(table_.FindIndex(1), nullptr);  // only part of the composite
  EXPECT_NE(table_.FindCompositeIndex({2, 1, 0}), nullptr);
  EXPECT_EQ(table_.FindCompositeIndex({1}), nullptr);
  EXPECT_GT(table_.IndexDramBytes(), 0u);
  EXPECT_FALSE(table_.CreateIndex({}).ok());
  EXPECT_FALSE(table_.CreateIndex({99}).ok());
}

TEST_F(IndexedTableTest, ExecutorUsesSingleColumnIndex) {
  ASSERT_TRUE(table_.CreateIndex({0}).ok());
  QueryExecutor executor(&table_);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{123})));
  QueryResult result = executor.Execute(txn, query);
  ASSERT_EQ(result.positions.size(), 1u);
  EXPECT_EQ(result.positions[0], 123u);
  // Index path: the first trace entry is already the index result.
  ASSERT_FALSE(result.candidate_trace.empty());
  EXPECT_EQ(result.candidate_trace[0], 1u);
}

TEST_F(IndexedTableTest, ExecutorUsesCompositeIndex) {
  ASSERT_TRUE(table_.CreateIndex({1, 2}).ok());
  QueryExecutor executor(&table_);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(2, Value(int32_t{13})));
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{3})));
  QueryResult result = executor.Execute(txn, query);
  // grp == 3 && payload == 13 <=> r % 50 == 13 && r % 10 == 3: rows
  // 13, 63, 113, ... (r % 50 == 13 implies r % 10 == 3).
  EXPECT_EQ(result.positions.size(), 10u);
  EXPECT_EQ(result.positions[0], 13u);
}

TEST_F(IndexedTableTest, IndexResultsMatchScans) {
  QueryExecutor executor(&table_);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(
      Predicate::Between(0, Value(int32_t{100}), Value(int32_t{140})));
  query.predicates.push_back(Predicate::Equals(1, Value(int32_t{5})));
  const PositionList without = executor.Execute(txn, query).positions;
  ASSERT_TRUE(table_.CreateIndex({0}).ok());
  const PositionList with = executor.Execute(txn, query).positions;
  EXPECT_EQ(without, with);
}

TEST_F(IndexedTableTest, IndexSurvivesMergeAndPlacement) {
  ASSERT_TRUE(table_.CreateIndex({0}).ok());
  Transaction writer = txns_.Begin();
  ASSERT_TRUE(table_
                  .Insert(writer, Row{Value(int32_t{1000}), Value(int32_t{0}),
                                      Value(int32_t{0})})
                  .ok());
  txns_.Commit(&writer);
  table_.MergeDelta();
  QueryExecutor executor(&table_);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{1000})));
  EXPECT_EQ(executor.Execute(txn, query).positions.size(), 1u);
  // Placement change rebuilds too; the index may now cover an SSCG column.
  ASSERT_TRUE(table_.SetPlacement({false, true, true}, nullptr).ok());
  EXPECT_EQ(executor.Execute(txn, query).positions.size(), 1u);
}

TEST_F(IndexedTableTest, IndexOnTieredColumnAvoidsDeviceReads) {
  // Paper: indices stay DRAM-resident even when their column is evicted, so
  // point access via the index costs no device time.
  ASSERT_TRUE(table_.CreateIndex({0}).ok());
  ASSERT_TRUE(table_.SetPlacement({false, true, true}, nullptr).ok());
  QueryExecutor executor(&table_);
  Transaction txn = txns_.Begin();
  Query query;
  query.predicates.push_back(Predicate::Equals(0, Value(int32_t{42})));
  QueryResult result = executor.Execute(txn, query);
  ASSERT_EQ(result.positions.size(), 1u);
  EXPECT_EQ(result.io.device_ns, 0u);
}

}  // namespace
}  // namespace hytap

#include "common/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "query/executor.h"
#include "storage/table.h"

namespace hytap {
namespace {

/// Trace spans are built only on the executor's serial control path, so the
/// span tree — everything except wall_ns and the queue-depth-dependent
/// simulated_ns — must be identical at every worker count, with and without
/// a seeded fault schedule.

constexpr size_t kMainRows = 3000;

Schema TestSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  schema.push_back({"grp", DataType::kInt32, 0});
  schema.push_back({"amount", DataType::kDouble, 0});
  schema.push_back({"qty", DataType::kInt64, 0});
  return schema;
}

struct Instance {
  TransactionManager txns;
  SecondaryStore store;
  BufferManager buffers;
  Table table;

  explicit Instance(FaultConfig faults = FaultConfig())
      : store(DeviceKind::kCssd, /*timing_seed=*/7),
        buffers(&store, /*frame_count=*/32),
        table("t", TestSchema(), &txns, &store, &buffers) {
    Rng rng(4321);
    std::vector<Row> rows;
    rows.reserve(kMainRows);
    for (size_t r = 0; r < kMainRows; ++r) {
      rows.push_back(Row{Value(int32_t(r)),
                         Value(int32_t(rng.NextInt(0, 40))),
                         Value(rng.NextDouble(0.0, 1000.0)),
                         Value(int64_t(rng.NextInt(1, 10000)))});
    }
    table.BulkLoad(rows);
    EXPECT_TRUE(table.SetPlacement({true, true, false, false}).ok());
    if (faults.AnyFaults()) store.ConfigureFaults(faults);
    Transaction txn = txns.Begin();
    for (size_t d = 0; d < 60; ++d) {
      EXPECT_TRUE(table
                      .Insert(txn, Row{Value(int32_t(kMainRows + d)),
                                       Value(int32_t(rng.NextInt(0, 40))),
                                       Value(rng.NextDouble(0.0, 1000.0)),
                                       Value(int64_t(rng.NextInt(1, 10000)))})
                      .ok());
    }
    txns.Commit(&txn);
  }
};

std::vector<Query> TestQueries() {
  std::vector<Query> queries;
  {
    // DRAM scan -> SSCG step over both tiered columns: exercises the
    // scan-vs-probe decision and materialization across locations.
    Query query;
    query.predicates.push_back(
        Predicate::Equals(1, Value(int32_t{7})));
    query.predicates.push_back(
        Predicate::Between(2, Value(100.0), Value(700.0)));
    query.projections = {0, 2};
    query.aggregates = {Aggregate::Count(), Aggregate::Sum(2)};
    queries.push_back(std::move(query));
  }
  {
    // Wide SSCG-first predicate: stays on the scan (rescan) side.
    Query query;
    query.predicates.push_back(
        Predicate::Between(3, Value(int64_t{100}), Value(int64_t{9000})));
    query.predicates.push_back(
        Predicate::Between(2, Value(0.0), Value(900.0)));
    query.aggregates = {Aggregate::Count()};
    queries.push_back(std::move(query));
  }
  return queries;
}

/// Strips the fields that legitimately vary with the requested thread count:
/// the timing fields and the root's "threads" request annotation.
TraceSpan Normalize(const TraceSpan& root) {
  TraceSpan out = StripTimes(root);
  auto& annotations = out.annotations;
  for (auto it = annotations.begin(); it != annotations.end(); ++it) {
    if (it->first == "threads") {
      annotations.erase(it);
      break;
    }
  }
  return out;
}

std::vector<TraceSpan> RunTraced(Instance& instance, uint32_t threads) {
  SetTraceEnabled(true);
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  std::vector<TraceSpan> traces;
  for (const Query& query : TestQueries()) {
    QueryResult result = executor.Execute(txn, query, threads);
    EXPECT_TRUE(result.status.ok()) << result.status.ToString();
    EXPECT_NE(result.trace, nullptr);
    if (result.trace != nullptr) traces.push_back(*result.trace);
  }
  instance.txns.Abort(&txn);
  SetTraceEnabled(false);
  return traces;
}

TEST(TraceTest, NoTraceWhileDisabled) {
  Instance instance;
  SetTraceEnabled(false);
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  QueryResult result = executor.Execute(txn, TestQueries()[0], 2);
  instance.txns.Abort(&txn);
  EXPECT_TRUE(result.status.ok());
  EXPECT_EQ(result.trace, nullptr);
}

TEST(TraceTest, SpanTreeStableAcrossThreadCounts) {
  Instance baseline;
  const std::vector<TraceSpan> serial = RunTraced(baseline, 1);
  for (uint32_t threads : {2u, 4u}) {
    Instance instance;
    const std::vector<TraceSpan> parallel = RunTraced(instance, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      EXPECT_TRUE(Normalize(parallel[q]) == Normalize(serial[q]))
          << "query " << q << " at " << threads << " threads:\n"
          << RenderTraceText(parallel[q]) << "vs serial:\n"
          << RenderTraceText(serial[q]);
    }
  }
}

TEST(TraceTest, SpanTreeStableUnderSeededFaultSchedule) {
  FaultConfig faults;
  faults.seed = 5;
  faults.read_error_rate = 0.05;
  faults.read_corruption_rate = 0.02;
  faults.latency_spike_rate = 0.05;
  Instance baseline(faults);
  const std::vector<TraceSpan> serial = RunTraced(baseline, 1);
  for (uint32_t threads : {2u, 4u}) {
    Instance instance(faults);
    const std::vector<TraceSpan> parallel = RunTraced(instance, threads);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t q = 0; q < serial.size(); ++q) {
      EXPECT_TRUE(Normalize(parallel[q]) == Normalize(serial[q]))
          << "query " << q << " at " << threads << " threads:\n"
          << RenderTraceText(parallel[q]) << "vs serial:\n"
          << RenderTraceText(serial[q]);
    }
  }
}

/// Finds the first descendant span with the given name (depth-first).
const TraceSpan* FindSpan(const TraceSpan& root, const std::string& name) {
  if (root.name == name) return &root;
  for (const TraceSpan& child : root.children) {
    if (const TraceSpan* found = FindSpan(child, name)) return found;
  }
  return nullptr;
}

/// Sums an integer annotation over the whole tree (absent = 0).
uint64_t SumAnnotation(const TraceSpan& root, const std::string& key) {
  uint64_t total = 0;
  const std::string& value = root.Annotation(key);
  if (!value.empty()) total += std::stoull(value);
  for (const TraceSpan& child : root.children) {
    total += SumAnnotation(child, key);
  }
  return total;
}

TEST(TraceTest, ExplainRecordsSelectivitiesAndDecision) {
  Instance instance;
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  const ExplainResult explain =
      executor.Explain(txn, TestQueries()[0], /*threads=*/2);
  instance.txns.Abort(&txn);
  ASSERT_TRUE(explain.result.status.ok());
  ASSERT_NE(explain.result.trace, nullptr);
  const TraceSpan& root = *explain.result.trace;
  EXPECT_EQ(root.name, "execute");
  EXPECT_FALSE(root.Annotation("predicate_order").empty());
  EXPECT_EQ(root.Annotation("status"), "ok");

  const TraceSpan* main_span = FindSpan(root, "main");
  ASSERT_NE(main_span, nullptr);
  const TraceSpan* scan = FindSpan(*main_span, "scan");
  ASSERT_NE(scan, nullptr);
  EXPECT_FALSE(scan->Annotation("est_selectivity").empty());
  EXPECT_FALSE(scan->Annotation("actual_selectivity").empty());
  EXPECT_EQ(scan->Annotation("column"), "grp");

  // The second predicate hits a tiered column: the trace must show the
  // scan-vs-probe decision with its inputs.
  const TraceSpan* probe = FindSpan(*main_span, "probe");
  const TraceSpan* rescan = FindSpan(*main_span, "rescan");
  ASSERT_TRUE(probe != nullptr || rescan != nullptr);
  const TraceSpan* decision = probe != nullptr ? probe : rescan;
  EXPECT_FALSE(decision->Annotation("qualifying_fraction").empty());
  EXPECT_FALSE(decision->Annotation("probe_threshold").empty());
  EXPECT_FALSE(decision->Annotation("decision").empty());

  // Per-span IoStats deltas must sum back to the result's IoStats.
  EXPECT_EQ(SumAnnotation(root, "page_reads"), explain.result.io.page_reads);
  EXPECT_EQ(SumAnnotation(root, "cache_hits"), explain.result.io.cache_hits);
  EXPECT_EQ(SumAnnotation(root, "pages_pruned"),
            explain.result.io.pages_pruned);
  EXPECT_EQ(SumAnnotation(root, "morsels_pruned"),
            explain.result.io.morsels_pruned);

  // Rendered outputs reference the tree.
  EXPECT_NE(explain.text.find("execute"), std::string::npos);
  EXPECT_NE(explain.text.find("main"), std::string::npos);
  EXPECT_FALSE(explain.json.empty());
}

TEST(TraceTest, ExplainRestoresTraceKnob) {
  Instance instance;
  SetTraceEnabled(false);
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  (void)executor.Explain(txn, TestQueries()[0]);
  EXPECT_FALSE(TraceEnabled());
  // Plain Execute afterwards attaches no trace.
  QueryResult result = executor.Execute(txn, TestQueries()[0]);
  EXPECT_EQ(result.trace, nullptr);
  instance.txns.Abort(&txn);
}

TEST(TraceTest, JsonRoundTrips) {
  Instance instance;
  QueryExecutor executor(&instance.table);
  Transaction txn = instance.txns.Begin();
  for (const Query& query : TestQueries()) {
    const ExplainResult explain = executor.Explain(txn, query, 2);
    ASSERT_NE(explain.result.trace, nullptr);
    TraceSpan parsed;
    ASSERT_TRUE(ParseTraceJson(explain.json, &parsed)) << explain.json;
    EXPECT_TRUE(parsed == *explain.result.trace);
  }
  instance.txns.Abort(&txn);
}

TEST(TraceTest, JsonRoundTripsEscapedStrings) {
  TraceSpan root;
  root.name = "weird \"name\"\twith\nescapes\\";
  root.simulated_ns = 17;
  root.wall_ns = 23;
  root.Annotate("key \"x\"", "value\n\t\\ \"y\"");
  TraceSpan child;
  child.name = "child";
  child.Annotate("a", "b");
  root.children.push_back(std::move(child));

  TraceSpan parsed;
  ASSERT_TRUE(ParseTraceJson(RenderTraceJson(root), &parsed));
  EXPECT_TRUE(parsed == root);
}

TEST(TraceTest, ParseRejectsMalformedJson) {
  TraceSpan out;
  EXPECT_FALSE(ParseTraceJson("", &out));
  EXPECT_FALSE(ParseTraceJson("{}", &out));
  EXPECT_FALSE(ParseTraceJson("{\"name\": \"x\"}", &out));
  EXPECT_FALSE(ParseTraceJson(
      "{\"name\": \"x\", \"simulated_ns\": 1, \"wall_ns\": 2, "
      "\"annotations\": {}, \"children\": [}",
      &out));
}

TEST(TraceTest, TextRenderingShowsTreeStructure) {
  TraceSpan root;
  root.name = "execute";
  root.simulated_ns = 100;
  TraceSpan child;
  child.name = "scan";
  child.Annotate("column", "grp");
  root.children.push_back(std::move(child));
  const std::string text = RenderTraceText(root);
  EXPECT_NE(text.find("execute [sim=100ns"), std::string::npos);
  EXPECT_NE(text.find("  scan"), std::string::npos);
  EXPECT_NE(text.find("column=grp"), std::string::npos);
}

}  // namespace
}  // namespace hytap

#include "common/status.h"

#include <gtest/gtest.h>

namespace hytap {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesMessage) {
  Status s = Status::NotFound("missing page");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing page");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing page");
}

TEST(StatusTest, Factories) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, FaultCodesToString) {
  EXPECT_EQ(Status::Unavailable("page 3 dead").ToString(),
            "UNAVAILABLE: page 3 dead");
  EXPECT_EQ(Status::DataLoss("checksum mismatch").ToString(),
            "DATA_LOSS: checksum mismatch");
  EXPECT_EQ(Status::Unavailable("").ToString(), "UNAVAILABLE");
  EXPECT_EQ(Status::DataLoss("").ToString(), "DATA_LOSS");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 7);
  EXPECT_EQ(*v, 7);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

TEST(StatusOrDeathTest, ValueOnErrorAborts) {
  StatusOr<int> v(Status::Internal("boom"));
  EXPECT_DEATH((void)v.value(), "boom");
}

}  // namespace
}  // namespace hytap

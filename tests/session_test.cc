#include "serving/session_manager.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <sstream>
#include <string>
#include <vector>

#include "core/tiered_table.h"
#include "workload/tpcc.h"

namespace hytap {
namespace {

std::unique_ptr<TieredTable> MakeOrderline(int orders_per_district = 20) {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 2;
  params.orders_per_district = orders_per_district;
  TieredTableOptions options;
  options.device = DeviceKind::kXpoint;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  return table;
}

/// Evicts the non-key columns so queries exercise the SSCG + page-cache +
/// fault-injection path, not just DRAM scans.
void EvictPayloadColumns(TieredTable* table) {
  std::vector<bool> placement(10, true);
  for (ColumnId c : {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo}) {
    placement[c] = false;
  }
  ASSERT_TRUE(table->ApplyPlacement(placement).ok());
}

Row MakeOrderlineRow(int32_t order) {
  return Row{Value(int32_t{order}), Value(int32_t{1}), Value(int32_t{1}),
             Value(int32_t{1}),     Value(int32_t{1}), Value(int32_t{1}),
             Value(int64_t{0}),     Value(int32_t{5}), Value(1.0),
             Value(std::string("x"))};
}

/// A query heavy enough to occupy a serving worker for a visible amount of
/// wall time: full-table range with projections over the evicted columns.
Query HeavyOlapQuery() {
  Query q;
  q.predicates.push_back(
      Predicate::AtLeast(kOlQuantity, Value(int32_t{0})));
  q.projections = {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo};
  return q;
}

/// Serializes every externally observable part of a QueryResult so runs can
/// be compared bit-for-bit (status, positions, rows, aggregates, simulated
/// IO, and the injected-fault counters inside it).
std::string Fingerprint(const QueryResult& r) {
  std::ostringstream out;
  out << r.status.ToString() << "|p:";
  for (RowId p : r.positions) out << p << ",";
  out << "|r:";
  for (const Row& row : r.rows) {
    for (const Value& v : row) out << v.ToString() << ",";
    out << ";";
  }
  out << "|a:";
  for (const Value& v : r.aggregate_values) out << v.ToString() << ",";
  out << "|io:" << r.io.device_ns << "/" << r.io.dram_ns << "/"
      << r.io.page_reads << "/" << r.io.cache_hits << "/" << r.io.retries
      << "/" << r.io.checksum_failures << "/" << r.io.quarantined_pages;
  out << "|c:";
  for (size_t c : r.candidate_trace) out << c << ",";
  return out.str();
}

TEST(SessionTest, SubmitExecutesAndMatchesSynchronousResult) {
  auto table = MakeOrderline();
  Query q = DeliveryQuery(1, 1, 5);
  Transaction txn = table->Begin();
  const QueryResult sync = table->ExecuteUnrecorded(txn, q);

  table->EnableServing(SessionOptions{});
  SubmitOptions opts;
  opts.query_class = QueryClass::kOltp;
  auto session = table->Submit(q, opts);
  ASSERT_TRUE(session.ok());
  QueryResult served = table->Await(*session);
  ASSERT_TRUE(served.status.ok());
  EXPECT_EQ(served.positions, sync.positions);
  ASSERT_EQ(served.rows.size(), sync.rows.size());
  for (size_t i = 0; i < served.rows.size(); ++i) {
    EXPECT_EQ(served.rows[i], sync.rows[i]);
  }
}

TEST(SessionTest, AdmissionQueueBoundRejectsOverflow) {
  auto table = MakeOrderline(60);
  EvictPayloadColumns(table.get());
  SessionOptions so;
  so.max_sessions = 1;
  so.queue_capacity = 4;
  SessionManager& sm = table->EnableServing(so);

  // Flood far faster than one worker can drain: the bounded queue must shed
  // the overflow with kResourceExhausted, before issuing a ticket.
  constexpr size_t kBurst = 200;
  std::vector<SessionHandle> admitted;
  size_t rejected = 0;
  for (size_t i = 0; i < kBurst; ++i) {
    auto s = sm.Submit(HeavyOlapQuery());
    if (s.ok()) {
      admitted.push_back(*s);
    } else {
      EXPECT_EQ(s.status().code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u);
  // Tickets are only issued to admitted queries.
  EXPECT_EQ(sm.tickets_issued(), admitted.size());

  for (const SessionHandle& s : admitted) {
    EXPECT_TRUE(s->Await().status.ok());
  }
  sm.Drain();
  // Leak check: everything admitted reached a terminal state.
  EXPECT_EQ(sm.queued(), 0u);
  EXPECT_EQ(sm.in_flight(), 0u);
}

TEST(SessionTest, DeadlineExceededQueriesAreShedNotExecuted) {
  auto table = MakeOrderline();
  SessionOptions so;
  so.max_sessions = 1;
  SessionManager& sm = table->EnableServing(so);

  const size_t executions_before = table->plan_cache().total_executions();
  SubmitOptions opts;
  opts.deadline_ns = SessionManager::NowNs() - 1;  // already expired
  auto s = sm.Submit(DeliveryQuery(1, 1, 3), opts);
  ASSERT_TRUE(s.ok());
  QueryResult r = (*s)->Await();
  EXPECT_EQ(r.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(r.positions.empty());
  EXPECT_TRUE(r.rows.empty());
  // Shed queries never reach the executor, so nothing was recorded.
  sm.Drain();
  EXPECT_EQ(table->plan_cache().total_executions(), executions_before);
}

TEST(SessionTest, EdfDispatchOrdersByClassThenDeadline) {
  auto table = MakeOrderline(60);
  EvictPayloadColumns(table.get());
  SessionOptions so;
  so.max_sessions = 1;  // single worker => dispatch order is observable
  SessionManager& sm = table->EnableServing(so);

  // Occupy the only worker so the next submissions pile up in the queue.
  auto blocker = sm.Submit(HeavyOlapQuery());
  ASSERT_TRUE(blocker.ok());

  const uint64_t now = SessionManager::NowNs();
  const uint64_t far = now + 60ull * 1000 * 1000 * 1000;
  SubmitOptions olap_late;
  olap_late.query_class = QueryClass::kOlap;
  olap_late.deadline_ns = far + 1000000;
  SubmitOptions olap_soon;
  olap_soon.query_class = QueryClass::kOlap;
  olap_soon.deadline_ns = far;
  SubmitOptions oltp;
  oltp.query_class = QueryClass::kOltp;
  oltp.deadline_ns = far + 2000000;  // latest deadline, highest class

  // Submit in inverted order: late OLAP, then sooner OLAP, then OLTP.
  auto a = sm.Submit(ChQuery19(1, 1, 500, 1, 5), olap_late);
  auto b = sm.Submit(ChQuery19(2, 1, 500, 1, 5), olap_soon);
  auto c = sm.Submit(DeliveryQuery(1, 1, 4), oltp);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  // The blocker must still be running for the order to be meaningful; it
  // scans the whole evicted table, submissions above take microseconds.
  EXPECT_FALSE((*blocker)->Done());

  EXPECT_TRUE((*a)->Await().status.ok());
  EXPECT_TRUE((*b)->Await().status.ok());
  EXPECT_TRUE((*c)->Await().status.ok());
  // OLTP dispatches before both OLAP queries despite its later deadline;
  // within OLAP, the earlier deadline goes first.
  EXPECT_LT((*c)->dispatch_index(), (*b)->dispatch_index());
  EXPECT_LT((*b)->dispatch_index(), (*a)->dispatch_index());
}

TEST(SessionTest, CancelWhileQueuedNeverExecutes) {
  auto table = MakeOrderline(60);
  EvictPayloadColumns(table.get());
  SessionOptions so;
  so.max_sessions = 1;
  SessionManager& sm = table->EnableServing(so);

  const size_t executions_before = table->plan_cache().total_executions();
  auto blocker = sm.Submit(HeavyOlapQuery());
  ASSERT_TRUE(blocker.ok());
  auto victim = sm.Submit(DeliveryQuery(1, 1, 6));
  ASSERT_TRUE(victim.ok());
  (*victim)->Cancel();

  QueryResult r = (*victim)->Await();
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(r.positions.empty());
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.aggregate_values.empty());
  EXPECT_TRUE((*blocker)->Await().status.ok());
  sm.Drain();
  // Only the blocker was recorded; the cancelled query never executed.
  EXPECT_EQ(table->plan_cache().total_executions(), executions_before + 1);
}

TEST(SessionTest, CancelledExecutionLeavesNoPartialResults) {
  // Deterministic half: a stop token raised before execution makes the
  // executor abort at its first serial control point with kCancelled and
  // every result member empty — the all-or-nothing contract mid-query
  // cancellation relies on.
  auto table = MakeOrderline();
  EvictPayloadColumns(table.get());
  std::atomic<bool> stop{true};
  ExecOptions opts;
  opts.stop = &stop;
  Transaction txn = table->Begin();
  QueryResult r = table->executor().Execute(txn, HeavyOlapQuery(), opts);
  EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(r.positions.empty());
  EXPECT_TRUE(r.rows.empty());
  EXPECT_TRUE(r.aggregate_values.empty());
  EXPECT_TRUE(r.candidate_trace.empty());
}

TEST(SessionTest, CancelMidQueryLeavesNoPartialResults) {
  auto table = MakeOrderline(120);
  EvictPayloadColumns(table.get());
  SessionOptions so;
  so.max_sessions = 1;
  SessionManager& sm = table->EnableServing(so);

  // Timing-dependent half: race Cancel() against a running query. Whether
  // the stop token lands mid-query or the query finishes first, the result
  // must be all or nothing; retry until a cancellation actually lands
  // mid-flight (on a loaded single-core host it may never — then the
  // deterministic test above still covers the abort path).
  for (int attempt = 0; attempt < 20; ++attempt) {
    auto s = sm.Submit(HeavyOlapQuery());
    ASSERT_TRUE(s.ok());
    while (!(*s)->Done() && sm.queued() > 0) {
    }
    (*s)->Cancel();
    QueryResult r = (*s)->Await();
    if (r.status.ok()) continue;  // finished before the token was observed
    EXPECT_EQ(r.status.code(), StatusCode::kCancelled);
    EXPECT_TRUE(r.positions.empty());
    EXPECT_TRUE(r.rows.empty());
    EXPECT_TRUE(r.aggregate_values.empty());
    sm.Drain();
    EXPECT_EQ(sm.queued(), 0u);
    EXPECT_EQ(sm.in_flight(), 0u);
    return;
  }
  GTEST_SKIP() << "query always finished before the stop token landed";
}

TEST(SessionTest, WritesSerializeAgainstQueries) {
  auto table = MakeOrderline();
  SessionManager& sm = table->EnableServing(SessionOptions{});

  // A row inserted before a submit is visible to it; one inserted after is
  // shielded by the snapshot + delta bound captured at submit.
  Transaction w1 = table->Begin();
  ASSERT_TRUE(table->Insert(w1, MakeOrderlineRow(901)).ok());
  table->Commit(&w1);

  Query probe;
  probe.predicates.push_back(
      Predicate::AtLeast(kOlOId, Value(int32_t{900})));
  auto before = sm.Submit(probe);
  ASSERT_TRUE(before.ok());

  Transaction w2 = table->Begin();
  ASSERT_TRUE(table->Insert(w2, MakeOrderlineRow(902)).ok());
  table->Commit(&w2);

  auto after = sm.Submit(probe);
  ASSERT_TRUE(after.ok());

  QueryResult r_before = (*before)->Await();
  QueryResult r_after = (*after)->Await();
  ASSERT_TRUE(r_before.status.ok());
  ASSERT_TRUE(r_after.status.ok());
  EXPECT_EQ(r_before.positions.size(), 1u);
  EXPECT_EQ(r_after.positions.size(), 2u);
}

/// The determinism tentpole: a concurrent run (4 workers, queries in flight
/// simultaneously, interleaved writes) must produce per-submission results
/// bit-identical to a serial submit-and-await replay — including the
/// simulated IO and the injected fault schedule — at 1, 2, and 4 execution
/// threads per query.
TEST(SessionTest, SerialReplayBitIdentityUnderConcurrencyAndFaults) {
  FaultConfig faults;
  faults.seed = 7;
  faults.read_error_rate = 0.02;
  faults.read_corruption_rate = 0.01;
  faults.latency_spike_rate = 0.01;

  const std::vector<Query> mix = {
      DeliveryQuery(1, 1, 5),       HeavyOlapQuery(),
      ChQuery19(1, 1, 500, 1, 5),   DeliveryQuery(2, 2, 9),
      ChQuery19(2, 100, 400, 2, 4), DeliveryQuery(1, 2, 12),
  };
  constexpr size_t kQueries = 36;

  // Runs the fixed submission history and returns one fingerprint per
  // submission index. `serial` awaits each query before the next submit;
  // the concurrent run keeps up to max_sessions queries in flight.
  auto run = [&](size_t max_sessions, uint32_t threads, bool serial) {
    auto table = MakeOrderline();
    EvictPayloadColumns(table.get());
    table->store().ConfigureFaults(faults);
    SessionOptions so;
    so.max_sessions = max_sessions;
    so.default_threads = threads;
    SessionManager& sm = table->EnableServing(so);

    std::vector<SessionHandle> handles;
    std::vector<std::string> prints;
    for (size_t i = 0; i < kQueries; ++i) {
      if (i % 8 == 3) {
        // Interleaved OLTP write at a fixed submission point. ExecuteWrite
        // serializes it against in-flight queries, so the table state seen
        // by every ticket is the same in both runs.
        Transaction w = table->Begin();
        EXPECT_TRUE(
            table->Insert(w, MakeOrderlineRow(1000 + int32_t(i))).ok());
        table->Commit(&w);
      }
      SubmitOptions opts;
      opts.query_class =
          (i % 2 == 0) ? QueryClass::kOltp : QueryClass::kOlap;
      auto s = sm.Submit(mix[i % mix.size()], opts);
      EXPECT_TRUE(s.ok());
      EXPECT_EQ((*s)->ticket(), uint64_t(i));
      if (serial) {
        prints.push_back(Fingerprint((*s)->Await()));
      } else {
        handles.push_back(*s);
      }
    }
    for (const SessionHandle& s : handles) {
      prints.push_back(Fingerprint(s->Await()));
    }
    sm.Drain();
    EXPECT_EQ(sm.queued(), 0u);
    EXPECT_EQ(sm.in_flight(), 0u);
    EXPECT_EQ(sm.tickets_issued(), kQueries);
    // Observation replay: every executed ticket recorded exactly once, in
    // ticket order, regardless of completion order.
    EXPECT_EQ(table->plan_cache().total_executions(), kQueries);
    return prints;
  };

  for (uint32_t threads : {1u, 2u, 4u}) {
    const std::vector<std::string> serial = run(1, threads, /*serial=*/true);
    const std::vector<std::string> concurrent =
        run(4, threads, /*serial=*/false);
    ASSERT_EQ(serial.size(), concurrent.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i], concurrent[i])
          << "ticket " << i << " diverged at threads=" << threads;
    }
  }
}

TEST(SessionTest, DrainLeavesNoLeakedSessions) {
  auto table = MakeOrderline();
  SessionOptions so;
  so.max_sessions = 2;
  so.queue_capacity = 8;
  SessionManager& sm = table->EnableServing(so);

  size_t admitted = 0;
  std::vector<SessionHandle> handles;
  for (size_t i = 0; i < 32; ++i) {
    auto s = sm.Submit(DeliveryQuery(1 + int32_t(i % 2), 1, int32_t(i % 20)));
    if (s.ok()) {
      ++admitted;
      handles.push_back(*s);
    }
  }
  sm.Drain();
  EXPECT_EQ(sm.queued(), 0u);
  EXPECT_EQ(sm.in_flight(), 0u);
  EXPECT_EQ(sm.tickets_issued(), admitted);
  for (const SessionHandle& s : handles) {
    EXPECT_TRUE(s->Done());
  }
}

}  // namespace
}  // namespace hytap

#include "common/random.h"

#include <gtest/gtest.h>

#include <vector>

namespace hytap {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 100; ++i) differs |= a2.Next() != c.Next();
  EXPECT_TRUE(differs);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInclusive) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

TEST(RngTest, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBool(0.25) ? 1 : 0;
  EXPECT_NEAR(double(hits) / 20000.0, 0.25, 0.02);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(21);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);  // same multiset
}

TEST(ZipfTest, RanksInRange) {
  Rng rng(3);
  ZipfGenerator zipf(1000, 1.0);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(zipf.Next(rng), 1000u);
  }
}

TEST(ZipfTest, SkewTowardLowRanks) {
  Rng rng(5);
  ZipfGenerator zipf(10000, 1.0);
  size_t top_decile = 0;
  const int samples = 50000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.Next(rng) < 1000) ++top_decile;
  }
  // For alpha=1, the top 10% of ranks receive far more than 10% of accesses.
  EXPECT_GT(double(top_decile) / samples, 0.5);
}

TEST(ZipfTest, HigherAlphaIsMoreSkewed) {
  Rng rng1(5), rng2(5);
  ZipfGenerator mild(10000, 0.8), steep(10000, 1.5);
  size_t mild_top = 0, steep_top = 0;
  for (int i = 0; i < 30000; ++i) {
    if (mild.Next(rng1) < 100) ++mild_top;
    if (steep.Next(rng2) < 100) ++steep_top;
  }
  EXPECT_GT(steep_top, mild_top);
}

TEST(ZipfTest, SingleElementDomain) {
  Rng rng(1);
  ZipfGenerator zipf(1, 1.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.Next(rng), 0u);
}

}  // namespace
}  // namespace hytap

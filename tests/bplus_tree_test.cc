#include "storage/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/random.h"

namespace hytap {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree<int64_t, uint64_t> tree;
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.Height(), 0u);
  EXPECT_TRUE(tree.Lookup(5).empty());
  EXPECT_FALSE(tree.Contains(5));
}

TEST(BPlusTreeTest, SingleInsertLookup) {
  BPlusTree<int64_t, uint64_t> tree;
  tree.Insert(7, 100);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_TRUE(tree.Contains(7));
  EXPECT_FALSE(tree.Contains(6));
  ASSERT_EQ(tree.Lookup(7).size(), 1u);
  EXPECT_EQ(tree.Lookup(7)[0], 100u);
}

TEST(BPlusTreeTest, Duplicates) {
  BPlusTree<int64_t, uint64_t> tree;
  for (uint64_t v = 0; v < 10; ++v) tree.Insert(42, v);
  auto result = tree.Lookup(42);
  ASSERT_EQ(result.size(), 10u);
  std::sort(result.begin(), result.end());
  for (uint64_t v = 0; v < 10; ++v) EXPECT_EQ(result[v], v);
}

TEST(BPlusTreeTest, SplitsGrowHeight) {
  BPlusTree<int64_t, uint64_t, 4> tree;  // tiny fan-out forces splits
  for (int64_t k = 0; k < 100; ++k) tree.Insert(k, uint64_t(k));
  EXPECT_GE(tree.Height(), 3u);
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree.Contains(k)) << k;
    ASSERT_EQ(tree.Lookup(k).size(), 1u) << k;
  }
  EXPECT_FALSE(tree.Contains(100));
  EXPECT_FALSE(tree.Contains(-1));
}

TEST(BPlusTreeTest, RangeLookupInclusive) {
  BPlusTree<int64_t, uint64_t, 8> tree;
  for (int64_t k = 0; k < 50; ++k) tree.Insert(k * 2, uint64_t(k));
  std::vector<uint64_t> out;
  tree.RangeLookup(10, 20, &out);  // keys 10,12,...,20 -> values 5..10
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 6u);
  EXPECT_EQ(out.front(), 5u);
  EXPECT_EQ(out.back(), 10u);
}

TEST(BPlusTreeTest, RangeLookupEmptyInterval) {
  BPlusTree<int64_t, uint64_t> tree;
  tree.Insert(1, 1);
  std::vector<uint64_t> out;
  tree.RangeLookup(10, 5, &out);  // hi < lo
  EXPECT_TRUE(out.empty());
  tree.RangeLookup(2, 3, &out);  // no keys in range
  EXPECT_TRUE(out.empty());
}

TEST(BPlusTreeTest, ReverseInsertionOrder) {
  BPlusTree<int64_t, uint64_t, 6> tree;
  for (int64_t k = 99; k >= 0; --k) tree.Insert(k, uint64_t(k));
  for (int64_t k = 0; k < 100; ++k) {
    ASSERT_EQ(tree.Lookup(k).size(), 1u) << k;
    EXPECT_EQ(tree.Lookup(k)[0], uint64_t(k));
  }
}

TEST(BPlusTreeTest, StringKeys) {
  BPlusTree<std::string, uint64_t, 8> tree;
  tree.Insert("delta", 3);
  tree.Insert("alpha", 0);
  tree.Insert("charlie", 2);
  tree.Insert("bravo", 1);
  EXPECT_TRUE(tree.Contains("charlie"));
  std::vector<uint64_t> out;
  tree.RangeLookup("alpha", "charlie", &out);
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[2], 2u);
}

// Property test: tree behaves exactly like a std::multimap reference under a
// random mixed workload of inserts, point and range lookups.
class BPlusTreePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BPlusTreePropertyTest, MatchesMultimapReference) {
  Rng rng(GetParam());
  BPlusTree<int64_t, uint64_t, 16> tree;
  std::multimap<int64_t, uint64_t> reference;
  for (uint64_t step = 0; step < 3000; ++step) {
    const int64_t key = rng.NextInt(-200, 200);
    tree.Insert(key, step);
    reference.emplace(key, step);
  }
  ASSERT_EQ(tree.size(), reference.size());
  for (int64_t key = -210; key <= 210; ++key) {
    auto got = tree.Lookup(key);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    auto [lo, hi] = reference.equal_range(key);
    for (auto it = lo; it != hi; ++it) want.push_back(it->second);
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "key=" << key;
  }
  // Random range lookups.
  for (int i = 0; i < 50; ++i) {
    int64_t lo = rng.NextInt(-250, 250);
    int64_t hi = rng.NextInt(-250, 250);
    if (lo > hi) std::swap(lo, hi);
    std::vector<uint64_t> got;
    tree.RangeLookup(lo, hi, &got);
    std::sort(got.begin(), got.end());
    std::vector<uint64_t> want;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      want.push_back(it->second);
    }
    std::sort(want.begin(), want.end());
    ASSERT_EQ(got, want) << "range [" << lo << "," << hi << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BPlusTreePropertyTest,
                         ::testing::Values(1, 2, 3, 17, 99));

}  // namespace
}  // namespace hytap

#include "workload/tpcc.h"

#include <gtest/gtest.h>

#include <set>

namespace hytap {
namespace {

TEST(TpccTest, SchemaShape) {
  Schema schema = OrderlineSchema();
  ASSERT_EQ(schema.size(), 10u);
  EXPECT_EQ(schema[kOlOId].name, "ol_o_id");
  EXPECT_EQ(schema[kOlQuantity].name, "ol_quantity");
  EXPECT_EQ(schema[kOlDistInfo].type, DataType::kString);
  EXPECT_EQ(schema[kOlAmount].type, DataType::kDouble);
  EXPECT_EQ(schema[kOlDeliveryD].type, DataType::kInt64);
}

TEST(TpccTest, GeneratedRowsRespectDomains) {
  OrderlineParams params;
  params.warehouses = 2;
  params.districts_per_warehouse = 3;
  params.orders_per_district = 10;
  auto rows = GenerateOrderlineRows(params);
  ASSERT_GT(rows.size(), 2u * 3 * 10 * 5);  // at least 5 lines per order
  std::set<int32_t> warehouses;
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 10u);
    warehouses.insert(row[kOlWId].AsInt32());
    EXPECT_GE(row[kOlOId].AsInt32(), 1);
    EXPECT_LE(row[kOlOId].AsInt32(), 10);
    EXPECT_GE(row[kOlQuantity].AsInt32(), 1);
    EXPECT_LE(row[kOlQuantity].AsInt32(), 10);
    EXPECT_GE(row[kOlIId].AsInt32(), 1);
    EXPECT_LE(row[kOlIId].AsInt32(), int32_t(params.items));
  }
  EXPECT_EQ(warehouses.size(), 2u);
}

TEST(TpccTest, OrderHasFiveToTenLines) {
  OrderlineParams params;
  params.warehouses = 1;
  params.districts_per_warehouse = 1;
  params.orders_per_district = 50;
  auto rows = GenerateOrderlineRows(params);
  std::map<int32_t, int> lines_per_order;
  for (const Row& row : rows) ++lines_per_order[row[kOlOId].AsInt32()];
  for (const auto& [order, lines] : lines_per_order) {
    EXPECT_GE(lines, 5) << order;
    EXPECT_LE(lines, 10) << order;
  }
}

TEST(TpccTest, PrimaryKeyColumns) {
  auto pk = OrderlinePrimaryKey();
  EXPECT_EQ(pk, (std::vector<ColumnId>{kOlOId, kOlDId, kOlWId, kOlNumber}));
}

TEST(TpccTest, DeliveryQueryShape) {
  Query q = DeliveryQuery(3, 2, 77);
  ASSERT_EQ(q.predicates.size(), 3u);
  EXPECT_EQ(q.predicates[0].column, kOlWId);
  EXPECT_EQ(*q.predicates[0].lo, Value(int32_t{3}));
  EXPECT_FALSE(q.projections.empty());
}

TEST(TpccTest, ChQuery19Shape) {
  Query q = ChQuery19(1, 100, 200, 1, 5);
  ASSERT_EQ(q.predicates.size(), 3u);
  EXPECT_EQ(q.predicates[2].column, kOlQuantity);
  EXPECT_EQ(*q.predicates[2].lo, Value(int32_t{1}));
  EXPECT_EQ(*q.predicates[2].hi, Value(int32_t{5}));
  EXPECT_EQ(q.projections, (std::vector<ColumnId>{kOlAmount}));
}

TEST(TpccTest, WorkloadModel) {
  OrderlineParams params;
  Workload w = OrderlineWorkload(params);
  w.Check();
  EXPECT_EQ(w.column_count(), 10u);
  // Delivery dominates the frequency mass.
  double max_freq = 0;
  for (const auto& q : w.queries) max_freq = std::max(max_freq, q.frequency);
  EXPECT_DOUBLE_EQ(max_freq, 1000.0);
  // ol_dist_info and ol_amount are never filtered.
  auto g = w.ColumnFrequencies();
  EXPECT_DOUBLE_EQ(g[kOlDistInfo], 0.0);
  EXPECT_DOUBLE_EQ(g[kOlAmount], 0.0);
  EXPECT_GT(g[kOlWId], 0.0);
}

}  // namespace
}  // namespace hytap

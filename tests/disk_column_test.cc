#include "storage/disk_column.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/row_layout.h"
#include "storage/sscg.h"

namespace hytap {
namespace {

class DiskColumnTest : public ::testing::Test {
 protected:
  DiskColumnTest() : store_(DeviceKind::kXpoint), buffers_(&store_, 16) {}

  SecondaryStore store_;
  BufferManager buffers_;
};

TEST_F(DiskColumnTest, RoundTrip) {
  ColumnDefinition def{"c", DataType::kInt32, 0};
  std::vector<Value> values;
  for (int32_t v : {5, 3, 5, 1, 9, 3}) values.emplace_back(v);
  DiskColumn column(def, values, &store_);
  EXPECT_EQ(column.row_count(), 6u);
  EXPECT_EQ(column.distinct_count(), 4u);
  for (RowId r = 0; r < 6; ++r) {
    EXPECT_EQ(*column.GetValue(r, &buffers_, 1, nullptr), values[r]) << r;
  }
}

TEST_F(DiskColumnTest, PointAccessCostsTwoPageReads) {
  // The paper's §II-A computation: value vector page + dictionary page.
  ColumnDefinition def{"c", DataType::kInt32, 0};
  std::vector<Value> values;
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    values.emplace_back(int32_t(rng.NextBounded(5000)));
  }
  DiskColumn column(def, values, &store_);
  IoStats io;
  column.GetValue(4321, &buffers_, 1, &io);
  EXPECT_EQ(io.page_reads + io.cache_hits, 2u);
}

TEST_F(DiskColumnTest, ScanMatchesNaive) {
  ColumnDefinition def{"c", DataType::kInt32, 0};
  std::vector<Value> values;
  Rng rng(7);
  std::vector<int32_t> raw;
  for (int i = 0; i < 3000; ++i) {
    raw.push_back(int32_t(rng.NextInt(-100, 100)));
    values.emplace_back(raw.back());
  }
  DiskColumn column(def, values, &store_);
  for (int trial = 0; trial < 10; ++trial) {
    int32_t lo = int32_t(rng.NextInt(-120, 120));
    int32_t hi = int32_t(rng.NextInt(-120, 120));
    if (lo > hi) std::swap(lo, hi);
    Value vlo(lo), vhi(hi);
    PositionList got;
    IoStats io;
    column.ScanBetween(&vlo, &vhi, &buffers_, 1, &got, &io);
    PositionList want;
    for (size_t r = 0; r < raw.size(); ++r) {
      if (raw[r] >= lo && raw[r] <= hi) want.push_back(r);
    }
    ASSERT_EQ(got, want) << "[" << lo << "," << hi << "]";
  }
}

TEST_F(DiskColumnTest, UnboundedScan) {
  ColumnDefinition def{"c", DataType::kInt32, 0};
  std::vector<Value> values{Value(int32_t{3}), Value(int32_t{1}),
                            Value(int32_t{2})};
  DiskColumn column(def, values, &store_);
  PositionList all;
  column.ScanBetween(nullptr, nullptr, &buffers_, 1, &all, nullptr);
  EXPECT_EQ(all, (PositionList{0, 1, 2}));
}

TEST_F(DiskColumnTest, StringsSupported) {
  ColumnDefinition def{"s", DataType::kString, 8};
  std::vector<Value> values{Value("pear"), Value("fig"), Value("apple"),
                            Value("fig")};
  DiskColumn column(def, values, &store_);
  EXPECT_EQ(*column.GetValue(2, &buffers_, 1, nullptr),
            Value(std::string("apple")));
  Value lo(std::string("apple")), hi(std::string("fig"));
  PositionList out;
  column.ScanBetween(&lo, &hi, &buffers_, 1, &out, nullptr);
  EXPECT_EQ(out, (PositionList{1, 2, 3}));
}

TEST_F(DiskColumnTest, WideTupleReconstructionMuchWorseThanSscg) {
  // The §II-A motivating claim, measured: reconstructing a 50-attribute
  // tuple from disk-resident dictionary-encoded columns costs ~2 page reads
  // per attribute; the SSCG costs one page total.
  const size_t attrs = 50;
  const size_t rows = 2000;
  Schema schema;
  for (size_t c = 0; c < attrs; ++c) {
    schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  Rng rng(5);
  std::vector<Row> data;
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < attrs; ++c) {
      row.emplace_back(int32_t(rng.NextBounded(2000)));
    }
    data.push_back(std::move(row));
  }
  // Disk-resident column store.
  std::vector<DiskColumn> columns;
  for (size_t c = 0; c < attrs; ++c) {
    std::vector<Value> values;
    for (size_t r = 0; r < rows; ++r) values.push_back(data[r][c]);
    columns.emplace_back(schema[c], values, &store_);
  }
  // SSCG over the same data.
  std::vector<ColumnId> members;
  for (ColumnId c = 0; c < attrs; ++c) members.push_back(c);
  Sscg sscg(RowLayout(schema, members), data, &store_);

  IoStats disk_io, sscg_io;
  BufferManager cold1(&store_, 4), cold2(&store_, 4);
  const RowId row = 1234;
  for (size_t c = 0; c < attrs; ++c) {
    columns[c].GetValue(row, &cold1, 1, &disk_io);
  }
  Row tuple = *sscg.ReconstructTuple(row, &cold2, 1, &sscg_io);
  EXPECT_EQ(tuple, data[row]);
  EXPECT_EQ(sscg_io.page_reads, 1u);
  // ~2 reads per attribute (dictionary pages may repeat-hit in the tiny
  // cache, so allow >= 1.5x attrs).
  EXPECT_GE(disk_io.page_reads, attrs * 3 / 2);
  EXPECT_GT(disk_io.device_ns, 20 * sscg_io.device_ns);
}

}  // namespace
}  // namespace hytap

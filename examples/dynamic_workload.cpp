// Dynamic workloads and reallocation costs (paper §III-D): the workload
// drifts over time; with beta = 0 the optimizer reshuffles placements every
// round, while a calibrated beta only moves columns whose performance gain
// justifies the migration.
//
// Build & run:  ./build/examples/dynamic_workload

#include <cstdio>

#include "selection/cost_model.h"
#include "selection/selectors.h"
#include "workload/example1.h"

using namespace hytap;

namespace {

size_t CountMoves(const std::vector<uint8_t>& from,
                  const std::vector<uint8_t>& to) {
  size_t moves = 0;
  for (size_t i = 0; i < from.size(); ++i) moves += from[i] != to[i];
  return moves;
}

double MovedBytes(const Workload& w, const std::vector<uint8_t>& from,
                  const std::vector<uint8_t>& to) {
  double bytes = 0;
  for (size_t i = 0; i < from.size(); ++i) {
    if (from[i] != to[i]) bytes += w.column_sizes[i];
  }
  return bytes;
}

}  // namespace

int main() {
  const ScanCostParams params{1.0, 100.0};
  constexpr double kBeta = 200.0;
  std::printf("simulating 8 days of drifting workload (N = 50 columns, "
              "20%% of queries replaced per day)\n\n");
  std::printf("%5s | %14s %12s | %14s %12s\n", "day", "beta=0 moves",
              "MB moved", "beta=200 moves", "MB moved");

  std::vector<uint8_t> placement_free, placement_costed;
  double total_free = 0, total_costed = 0;
  double perf_free = 0, perf_costed = 0;
  for (int day = 0; day < 8; ++day) {
    // The workload drifts gradually: columns stay identical, but each day
    // 20% of the query mix is replaced with fresh templates.
    Example1Params gen;
    gen.seed = 1;
    Workload w = GenerateExample1(gen);
    for (int d = 1; d <= day; ++d) {
      Example1Params drift = gen;
      drift.seed = 100 + d;
      Workload fresh = GenerateExample1(drift);
      const size_t chunk = w.queries.size() / 5;
      const size_t offset = (size_t(d) * chunk) % w.queries.size();
      for (size_t k = 0; k < chunk; ++k) {
        w.queries[(offset + k) % w.queries.size()] =
            fresh.queries[(offset + k) % fresh.queries.size()];
      }
    }

    auto problem = SelectionProblem::FromRelativeBudget(w, params, 0.4);
    CostModel model(w, params);
    if (day == 0) {
      placement_free = SelectIntegerOptimal(problem).in_dram;
      placement_costed = placement_free;
      std::printf("%5d | %14s %12s | %14s %12s\n", day, "(init)", "-",
                  "(init)", "-");
      continue;
    }
    // beta = 0: chase the optimum every day.
    SelectionResult free_move = SelectIntegerOptimal(problem);
    const size_t free_moves = CountMoves(placement_free, free_move.in_dram);
    const double free_bytes = MovedBytes(w, placement_free,
                                         free_move.in_dram);
    placement_free = free_move.in_dram;
    total_free += free_bytes;
    perf_free += model.RelativePerformance(placement_free);

    // beta > 0: move only when the gain beats the reallocation cost.
    SelectionProblem costed = problem;
    costed.current = placement_costed;
    costed.beta = kBeta;
    SelectionResult costed_move = SelectIntegerOptimal(costed);
    const size_t costed_moves =
        CountMoves(placement_costed, costed_move.in_dram);
    const double costed_bytes =
        MovedBytes(w, placement_costed, costed_move.in_dram);
    placement_costed = costed_move.in_dram;
    total_costed += costed_bytes;
    perf_costed += model.RelativePerformance(placement_costed);

    std::printf("%5d | %14zu %12.1f | %14zu %12.1f\n", day, free_moves,
                free_bytes / 1e6, costed_moves, costed_bytes / 1e6);
  }
  std::printf("\ntotal migration volume: beta=0 %.1f MB, beta=200 %.1f MB\n",
              total_free / 1e6, total_costed / 1e6);
  std::printf("mean relative performance: beta=0 %.3f, beta=200 %.3f\n",
              perf_free / 7.0, perf_costed / 7.0);
  std::printf("\n-> with reallocation costs the optimizer skips low-value "
              "reshuffles and batches moves into fewer maintenance rounds, "
              "cutting migration volume at equal scan performance.\n");
  return 0;
}

// Enterprise scenario: the BSEG table of an SAP ERP financial module
// (345 attributes, heavily skewed filters). Shows the paper's headline
// result: ~78% of the footprint can be evicted for free, and the explicit
// solver places the rest along the Pareto frontier in microseconds.
//
// Build & run:  ./build/examples/enterprise_tiering

#include <cstdio>

#include "selection/cost_model.h"
#include "selection/heuristics.h"
#include "selection/selectors.h"
#include "workload/enterprise.h"

using namespace hytap;

int main() {
  const EnterpriseProfile profile = BsegProfile();
  Workload workload = GenerateEnterpriseWorkload(profile, /*seed=*/42);
  const ScanCostParams params{1.0, 100.0};
  CostModel model(workload, params);

  std::printf("BSEG-like workload: %zu attributes, %zu query templates\n",
              workload.column_count(), workload.query_count());
  WorkloadSkew skew = AnalyzeSkew(workload);
  std::printf("  filtered: %zu, filtered in >=1%% of executions: %zu\n",
              skew.filtered_count, skew.hot_filtered_count);
  std::printf("  never-filtered bytes: %.1f%% of the table\n\n",
              100.0 * skew.unfiltered_byte_share);

  // Sweep the DRAM budget and print the Pareto frontier.
  std::printf("%8s %12s %14s %14s\n", "w", "DRAM [MB]", "rel. perf",
              "evicted [%]");
  for (double w : {1.0, 0.5, 0.22, 0.15, 0.10, 0.07, 0.05, 0.03, 0.01}) {
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, w);
    SelectionResult result = SelectExplicit(problem);
    std::printf("%8.2f %12.1f %14.3f %14.1f\n", w,
                result.dram_bytes / 1e6,
                model.RelativePerformance(result.in_dram),
                100.0 * (1.0 - result.dram_bytes / workload.TotalBytes()));
  }

  // Compare against the naive heuristics at a tight budget.
  std::printf("\nat w = 0.10 (explicit vs heuristics):\n");
  auto problem = SelectionProblem::FromRelativeBudget(workload, params, 0.10);
  SelectionResult explicit_sel = SelectExplicit(problem);
  std::printf("  %-28s rel. perf %.3f (%.2g s solve)\n", "explicit (paper)",
              model.RelativePerformance(explicit_sel.in_dram),
              explicit_sel.solve_seconds);
  for (auto kind : {HeuristicKind::kH1Frequency, HeuristicKind::kH2Selectivity,
                    HeuristicKind::kH3SelectivityPerFreq}) {
    SelectionResult h = SelectHeuristic(problem, kind);
    std::printf("  %-28s rel. perf %.3f\n", HeuristicName(kind),
                model.RelativePerformance(h.in_dram));
  }

  // The DBA pins the document-number column for an SLA; the model adapts.
  problem.pinned.assign(workload.column_count(), 0);
  problem.pinned[0] = 1;  // BELNR
  SelectionResult pinned = SelectExplicit(problem);
  std::printf("\nwith BELNR pinned: rel. perf %.3f using %.1f MB\n",
              model.RelativePerformance(pinned.in_dram),
              pinned.dram_bytes / 1e6);
  return 0;
}

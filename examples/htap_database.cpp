// Multi-table HTAP scenario: a database holding ORDERLINE and ITEM, a mixed
// workload with an actual CH-19 join, delta auto-merge, and the *global*
// advisor placing all columns of all tables against one DRAM budget
// (paper §III-G).
//
// Build & run:  ./build/examples/htap_database

#include <cstdio>

#include "core/database.h"
#include "core/global_advisor.h"
#include "workload/tpcc.h"

using namespace hytap;

int main() {
  DatabaseOptions db_options;
  db_options.merge_threshold = 0.05;  // merge once delta > 5% of main
  Database db(db_options);
  OrderlineParams params;
  params.warehouses = 4;
  params.districts_per_warehouse = 5;
  params.orders_per_district = 60;
  params.items = 1000;
  db.CreateTable("orderline", OrderlineSchema())
      ->BulkLoad(GenerateOrderlineRows(params));
  db.CreateTable("item", ItemSchema())
      ->BulkLoad(GenerateItemRows(params.items, 11));
  std::printf("database: orderline %zu rows, item %zu rows\n",
              db.GetTable("orderline")->row_count(),
              db.GetTable("item")->row_count());

  // Mixed workload: OLTP delivery + analytical CH-19 join, with inserts
  // flowing through the delta and periodic merges.
  Transaction txn = db.Begin();
  for (int i = 0; i < 300; ++i) {
    db.Execute(txn, "orderline",
               DeliveryQuery(1 + i % 4, 1 + i % 5, 1 + i % 60));
  }
  ChQuery19Join ch19 = MakeChQuery19Join(1, 1, 5, 10.0, 60.0);
  JoinResult join = db.ExecuteJoin(txn, "orderline", ch19.orderline, "item",
                                   ch19.item, ch19.spec);
  double revenue = 0;
  for (const Row& row : join.rows) revenue += row[0].AsDouble();
  std::printf("CH-19 join: %zu matches, revenue %.2f, %.2f ms simulated\n",
              join.matches.size(), revenue,
              double(join.io.TotalNs()) / 1e6);

  Transaction writer = db.Begin();
  for (int i = 0; i < 500; ++i) {
    Row row{Value(int32_t(10000 + i)), Value(int32_t(1 + i % 5)),
            Value(int32_t(1 + i % 4)), Value(int32_t(1 + i % 10)),
            Value(int32_t(1 + i % 1000)), Value(int32_t{1}),
            Value(int64_t{1514764800}), Value(int32_t(1 + i % 10)),
            Value(double(i) * 0.25), Value(std::string("fresh"))};
    if (!db.GetTable("orderline")->Insert(writer, row).ok()) return 1;
  }
  db.Commit(&writer);
  const bool merged = db.MaybeMerge("orderline");
  std::printf("inserted 500 rows; auto-merge ran: %s (main now %zu rows)\n",
              merged ? "yes" : "no",
              db.GetTable("orderline")->main_row_count());

  // Post-merge baseline (the merged rows are part of the result now).
  Transaction baseline_txn = db.Begin();
  JoinResult join_baseline =
      db.ExecuteJoin(baseline_txn, "orderline", ch19.orderline, "item",
                     ch19.item, ch19.spec);

  // One budget for the whole database: the global advisor concatenates all
  // tables' workloads and lets the budget flow to the hottest columns.
  GlobalAdvisor advisor(ScanCostParams{1.0, 100.0});
  GlobalRecommendation rec = advisor.RecommendRelative(&db, 0.35);
  std::printf("\nglobal placement at w = 0.35 (joint column space: %zu "
              "columns):\n",
              rec.joint_workload.column_count());
  for (const TablePlacement& placement : rec.placements) {
    size_t dram = 0;
    for (bool b : placement.in_dram) dram += b ? 1 : 0;
    std::printf("  %-10s %2zu/%2zu columns in DRAM (%.2f MB)\n",
                placement.table.c_str(), dram, placement.in_dram.size(),
                placement.dram_bytes / 1e6);
  }
  auto moved = advisor.Apply(&db, rec.selection.dram_bytes);
  if (!moved.ok()) return 1;
  std::printf("applied: %.2f MB migrated\n", double(*moved) / 1e6);

  // The workload keeps running against the tiered database.
  Transaction txn2 = db.Begin();
  QueryResult delivery = db.Execute(txn2, "orderline",
                                    DeliveryQuery(2, 3, 17));
  JoinResult join2 = db.ExecuteJoin(txn2, "orderline", ch19.orderline,
                                    "item", ch19.item, ch19.spec);
  std::printf("\nafter tiering: delivery %.1f us, CH-19 join %.2f ms "
              "(simulated)\n",
              double(delivery.io.TotalNs()) / 1e3,
              double(join2.io.TotalNs()) / 1e6);
  std::printf("join matches unchanged by tiering: %s (%zu)\n",
              join2.matches.size() == join_baseline.matches.size() ? "yes"
                                                                   : "NO",
              join2.matches.size());
  return 0;
}

// Quickstart: load a table, run a workload, let the advisor evict cold
// columns, and observe that queries still work while DRAM shrinks.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/advisor.h"
#include "core/tiered_table.h"
#include "workload/tpcc.h"

using namespace hytap;

int main() {
  // 1. Create a tiered table on a simulated 3D XPoint device and load the
  //    TPC-C ORDERLINE table.
  OrderlineParams params;
  params.warehouses = 4;
  params.districts_per_warehouse = 5;
  params.orders_per_district = 50;
  TieredTable table("orderline", OrderlineSchema(), TieredTableOptions{});
  table.Load(GenerateOrderlineRows(params));
  std::printf("loaded %zu rows, %zu columns, %.1f MB in DRAM\n",
              table.table().row_count(), table.table().column_count(),
              double(table.table().MainDramBytes()) / 1e6);

  // 2. Run a mixed workload: delivery transactions (OLTP) plus a CH-19-style
  //    analytical query. Every execution lands in the plan cache.
  Transaction txn = table.Begin();
  for (int i = 0; i < 200; ++i) {
    QueryResult r = table.Execute(
        txn, DeliveryQuery(1 + i % 4, 1 + i % 5, 1 + i % 50));
    if (i == 0) {
      std::printf("delivery query: %zu order lines, %.1f us simulated\n",
                  r.positions.size(), double(r.io.TotalNs()) / 1e3);
    }
  }
  table.Execute(txn, ChQuery19(1, 1, 800, 1, 5));

  // 3. Ask the advisor for a placement that fits 30% of today's footprint.
  Advisor advisor;
  Recommendation rec = advisor.RecommendRelative(table, 0.3);
  std::printf("\nadvisor recommendation (w = 0.3):\n");
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    std::printf("  %-14s -> %s\n", table.table().schema()[c].name.c_str(),
                rec.in_dram[c] ? "DRAM (MRC)" : "secondary (SSCG)");
  }
  std::printf("model: relative performance %.3f at %.1f%% of the footprint\n",
              CostModel(rec.workload, advisor.options().cost_params)
                  .RelativePerformance(rec.selection.in_dram),
              100.0 * rec.selection.dram_bytes / rec.workload.TotalBytes());

  // 4. Apply it and verify the workload still runs — now partially tiered.
  auto moved = table.ApplyPlacement(rec.in_dram);
  if (!moved.ok()) {
    std::printf("placement failed: %s\n", moved.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmigrated %.1f MB; DRAM now %.1f MB\n", double(*moved) / 1e6,
              double(table.table().MainDramBytes()) / 1e6);

  QueryResult delivery = table.Execute(txn, DeliveryQuery(2, 3, 17));
  QueryResult analytical = table.Execute(txn, ChQuery19(1, 1, 800, 1, 5));
  std::printf("after tiering: delivery %.1f us, CH-19 %.1f us (simulated)\n",
              double(delivery.io.TotalNs()) / 1e3,
              double(analytical.io.TotalNs()) / 1e3);
  return 0;
}

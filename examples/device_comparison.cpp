// Device comparison: how the choice of secondary storage device changes
// tiering behaviour. Reconstructions on a wide table are compared across the
// paper's four devices, including the crossover where SSCG-on-3D-XPoint
// beats fully DRAM-resident dictionary-encoded tuples.
//
// Build & run:  ./build/examples/device_comparison

#include <cstdio>

#include "core/tiered_table.h"
#include "query/tuple_reconstructor.h"
#include "workload/enterprise.h"

using namespace hytap;

int main() {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = 200;  // synthetic 200-attribute table
  const size_t rows = 20000;
  const size_t reconstructions = 3000;

  std::printf("full-width tuple reconstruction, %zu rows x %zu attributes\n",
              rows, profile.attribute_count);
  std::printf("placement: 20 MRC attributes + 180 in the SSCG\n\n");

  // DRAM baseline: everything stays dictionary-encoded in memory.
  {
    TieredTable table("baseline", MakeEnterpriseSchema(profile),
                      TieredTableOptions{});
    table.Load(GenerateEnterpriseRows(profile, rows, 7));
    TupleReconstructor reconstructor(&table.table());
    LatencyStats stats = reconstructor.RunBatch(
        reconstructions, AccessDistribution::kUniform, 1, 13);
    std::printf("%-10s mean %8.1f us   p99 %8.1f us\n", "DRAM",
                stats.mean_ns / 1e3, double(stats.p99_ns) / 1e3);
  }

  for (DeviceKind device : kSecondaryDevices) {
    TieredTableOptions options;
    options.device = device;
    TieredTable table("tiered", MakeEnterpriseSchema(profile), options);
    table.Load(GenerateEnterpriseRows(profile, rows, 7));
    std::vector<bool> placement(profile.attribute_count, false);
    for (ColumnId c = 0; c < 20; ++c) placement[c] = true;
    if (!table.ApplyPlacement(placement).ok()) return 1;
    TupleReconstructor reconstructor(&table.table());
    LatencyStats stats = reconstructor.RunBatch(
        reconstructions, AccessDistribution::kUniform, 1, 13);
    std::printf("%-10s mean %8.1f us   p99 %8.1f us   (cache hit rate %.0f%%)\n",
                DeviceKindName(device), stats.mean_ns / 1e3,
                double(stats.p99_ns) / 1e3,
                100.0 * table.buffers().stats().HitRate());
  }

  std::printf("\n-> 3D XPoint reconstructions beat the DRAM baseline on wide "
              "tables; NAND devices pay their ~100 us latency; HDD is "
              "unusable for point access.\n");
  return 0;
}

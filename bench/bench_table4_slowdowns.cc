// Reproduces Table IV: relative slowdowns of tiered access patterns compared
// to a fully DRAM-resident, dictionary-encoded columnar system, across
// thread counts.
//
// Rows (paper): uniform/zipfian tuple reconstruction on wide tables
// (<= 1.0x, i.e. tiering can be *faster*), scanning a 1/100 SSCG attribute
// (10^2-10^3 x slower), probing at 0.1% and 10% selectivity (10^2-10^3 x,
// improving with concurrency on SSDs).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/tiered_table.h"
#include "query/tuple_reconstructor.h"
#include "storage/dictionary_column.h"
#include "storage/sscg.h"
#include "storage/zone_map.h"
#include "workload/enterprise.h"

using namespace hytap;

namespace {

Schema WideSchema(size_t width) {
  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  return schema;
}

std::vector<Row> GroupRows(size_t rows, size_t width) {
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      row.emplace_back(int32_t((r * 31 + c) % 1000));
    }
    data.push_back(std::move(row));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  const DeviceKind device = DeviceKind::kCssd;  // representative NAND tier
  // Table IV compares full access paths; data skipping would shrink the
  // tiered side on this partially-prunable synthetic data and distort the
  // published slowdown factors. bench_data_skipping measures pruning.
  SetZoneMapsEnabled(false);
  bench::PrintHeader("Table IV: slowdown vs full-DRAM columnar (CSSD tier)");
  std::printf("%-28s %10s %10s %10s\n", "pattern", "1 thread", "8 threads",
              "32 threads");

  // --- tuple reconstruction on a wide table (200 attrs, 150 in SSCG) ---
  {
    EnterpriseProfile profile = BsegProfile();
    profile.attribute_count = 200;
    const size_t rows = small ? 3000 : 10000;
    const size_t samples = small ? 600 : 2500;
    const auto data = GenerateEnterpriseRows(profile, rows, 7);
    TieredTable dram("dram", MakeEnterpriseSchema(profile),
                     TieredTableOptions{});
    dram.Load(data);
    TieredTableOptions options;
    options.device = device;
    TieredTable tiered("tiered", MakeEnterpriseSchema(profile), options);
    tiered.Load(data);
    std::vector<bool> placement(200, false);
    for (size_t c = 150; c < 200; ++c) placement[c] = true;
    if (!tiered.ApplyPlacement(placement).ok()) return 1;
    for (auto dist :
         {AccessDistribution::kUniform, AccessDistribution::kZipfian}) {
      const char* label = dist == AccessDistribution::kUniform
                              ? "uniform tuple rec. (150/200)"
                              : "zipfian tuple rec. (150/200)";
      std::printf("%-28s", label);
      // DRAM reconstruction is memory-latency-bound (pointer chasing) and
      // does not parallelize; the device overlaps `threads` outstanding
      // requests. Compare per-tuple wall time against the fixed DRAM cost.
      TupleReconstructor base(&dram.table());
      TupleReconstructor tier(&tiered.table());
      const double b = base.RunBatch(samples, dist, 1, 13).mean_ns;
      for (uint32_t threads : {1u, 8u, 32u}) {
        const double t =
            tier.RunBatch(samples, dist, threads, 13).mean_ns / threads;
        std::printf(" %9.2fx", t / b);
      }
      std::printf("\n");
    }
  }

  // --- scanning and probing a 1/100 SSCG attribute ---
  {
    const size_t width = 100;
    const size_t rows = small ? 40000 : 150000;
    Schema schema = WideSchema(width);
    std::vector<ColumnId> members;
    for (ColumnId c = 0; c < width; ++c) members.push_back(c);
    const auto data = GroupRows(rows, width);
    SecondaryStore store(device);
    Sscg sscg(RowLayout(schema, members), data, &store);
    BufferManager buffers(&store, 32);
    // DRAM reference: a vectorized scan over the same column.
    std::vector<int32_t> column;
    column.reserve(rows);
    for (size_t r = 0; r < rows; ++r) column.push_back((r * 31) % 1000);
    auto mrc = DictionaryColumn<int32_t>::Build(column);
    const double dram_scan_ns =
        double(mrc->MemoryUsage()) / kDramScanBytesPerNs;

    std::printf("%-28s", "scanning (1/100)");
    for (uint32_t threads : {1u, 8u, 32u}) {
      buffers.Clear();
      PositionList out;
      IoStats io;
      Value v(int32_t{5});
      sscg.ScanSlot(0, &v, &v, &buffers, threads, &out, &io);
      std::printf(" %9.0fx",
                  double(io.WallNs(threads)) / (dram_scan_ns / threads));
    }
    std::printf("\n");

    for (double selectivity : {0.001, 0.1}) {
      Rng rng(99);
      PositionList candidates;
      for (size_t k = 0; k < size_t(double(rows) * selectivity); ++k) {
        candidates.push_back(rng.NextBounded(rows));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      // Probing DRAM positions is latency-bound and does not parallelize;
      // device probing gains from queue depth (the paper's probing rows
      // improve sharply with threads).
      const double dram_probe_ns =
          double(candidates.size()) * 2 * kDramTouchNs;
      std::printf("probing (1/100, %4.1f%%)      ", 100 * selectivity);
      for (uint32_t threads : {1u, 8u, 32u}) {
        buffers.Clear();
        PositionList out;
        IoStats io;
        Value v(int32_t{5});
        sscg.ProbeSlot(0, &v, &v, candidates, &buffers, threads, &out, &io);
        std::printf(" %9.0fx", double(io.WallNs(threads)) / dram_probe_ns);
      }
      std::printf("\n");
    }
  }
  std::printf("\n-> tuple reconstruction is ~break-even on wide tables; "
              "scans and probes on tiered attributes cost 10^2-10^3 x and "
              "probing improves with queue depth (paper Table IV).\n");
  bench::MaybeWriteMetricsSnapshot("table4_slowdowns");
  return 0;
}

#ifndef HYTAP_BENCH_BENCH_UTIL_H_
#define HYTAP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"

namespace hytap::bench {

/// Wall-clock stopwatch for solver timing (real time, not simulated).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Dumps the process-wide metrics registry to METRICS_<bench_name>.json when
/// HYTAP_BENCH_METRICS is set ("1"/"on"/"true"); a no-op otherwise. Every
/// bench main calls this last, so any benchmark run can emit an
/// observability snapshot alongside its BENCH_*.json result.
inline void MaybeWriteMetricsSnapshot(const char* bench_name) {
  const char* env = std::getenv("HYTAP_BENCH_METRICS");
  if (env == nullptr ||
      (std::strcmp(env, "1") != 0 && std::strcmp(env, "on") != 0 &&
       std::strcmp(env, "true") != 0)) {
    return;
  }
  const std::string path = std::string("METRICS_") + bench_name + ".json";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const std::string json = MetricsRegistry::Global().Snapshot().ToJson();
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("metrics snapshot written to %s\n", path.c_str());
}

}  // namespace hytap::bench

#endif  // HYTAP_BENCH_BENCH_UTIL_H_

#ifndef HYTAP_BENCH_BENCH_UTIL_H_
#define HYTAP_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>

namespace hytap::bench {

/// Wall-clock stopwatch for solver timing (real time, not simulated).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

}  // namespace hytap::bench

#endif  // HYTAP_BENCH_BENCH_UTIL_H_

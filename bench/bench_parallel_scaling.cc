// Real wall-clock scaling of the morsel-driven parallel engine: MRC scans,
// tiered probes, and tuple materialization at 1/2/4/8 worker threads.
//
// Unlike the figure benchmarks (which report *simulated* device time), this
// one measures actual elapsed time of the parallel data passes, so the
// numbers depend on the host's core count. Results are printed as a table
// and written to BENCH_parallel_scaling.json for the CI trend tracker.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "common/thread_pool.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/dictionary_column.h"
#include "storage/table.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

struct Sample {
  const char* op;
  uint32_t threads;
  double seconds;
  double rows_per_sec;
  double speedup;  // vs the 1-thread run of the same op
};

std::vector<Sample> g_samples;

/// Times `fn` (already warmed) over `reps` runs, keeping the best run —
/// standard practice for wall-clock microbenchmarks on shared machines.
template <typename Fn>
double BestSeconds(int reps, Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    bench::Stopwatch watch;
    fn();
    best = std::min(best, watch.Seconds());
  }
  return best;
}

void Record(const char* op, uint32_t threads, double seconds, size_t rows,
            double base_seconds) {
  const Sample s{op, threads, seconds, double(rows) / seconds,
                 base_seconds / seconds};
  g_samples.push_back(s);
  std::printf("  %-12s %2u threads: %9.2f ms  %10.1f Mrows/s  %5.2fx\n",
              op, threads, seconds * 1e3, s.rows_per_sec / 1e6, s.speedup);
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_samples.size(); ++i) {
    const Sample& s = g_samples[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"threads\": %u, \"seconds\": %.6f, "
                 "\"rows_per_sec\": %.1f, \"speedup\": %.3f}%s\n",
                 s.op, s.threads, s.seconds, s.rows_per_sec, s.speedup,
                 i + 1 < g_samples.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  const uint32_t thread_counts[] = {1, 2, 4, 8};

  // --- MRC vectorized scan: the ISSUE acceptance target (>= 2x at 4
  // threads on >= 10M rows, given >= 4 physical cores). ---
  const size_t scan_rows = small ? 1000000 : 10000000;
  bench::PrintHeader("MRC scan scaling (dictionary-encoded int32)");
  std::printf("%zu rows, ~1%% selectivity, best of 5\n", scan_rows);
  {
    Rng rng(42);
    std::vector<int32_t> values;
    values.reserve(scan_rows);
    for (size_t r = 0; r < scan_rows; ++r) {
      values.push_back(int32_t(rng.NextBounded(10000)));
    }
    auto column = DictionaryColumn<int32_t>::Build(values);
    const Value lo(int32_t{100}), hi(int32_t{199});
    double base = 0;
    for (uint32_t threads : thread_counts) {
      const double secs = BestSeconds(5, [&] {
        PositionList out;
        ParallelScanColumn(*column, &lo, &hi, threads, &out);
      });
      if (threads == 1) base = secs;
      Record("mrc_scan", threads, secs, scan_rows, base);
    }
  }

  // --- Probe + materialize over a TPC-C ORDERLINE-shaped tiered table. ---
  OrderlineParams params;
  params.warehouses = small ? 20 : 100;
  bench::PrintHeader("ORDERLINE probe + materialize scaling");
  {
    TransactionManager txns;
    SecondaryStore store(DeviceKind::kCssd);
    BufferManager buffers(&store, 4096);
    Table table("orderline", OrderlineSchema(), &txns, &store, &buffers);
    table.BulkLoad(GenerateOrderlineRows(params));
    const size_t rows = table.main_row_count();
    std::printf("%zu rows, payload tiered, best of 3\n", rows);
    // Paper placement: primary key stays in DRAM, payload goes to the SSCG.
    std::vector<bool> placement(OrderlineSchema().size(), false);
    for (ColumnId c : OrderlinePrimaryKey()) placement[c] = true;
    if (!table.SetPlacement(placement).ok()) return 1;

    QueryExecutor executor(&table);
    Transaction txn = txns.Begin();
    // CH-19-style analytical query: DRAM predicate + tiered range predicate,
    // projecting two payload columns. Exercises scan, probe, materialize.
    Query query = ChQuery19(/*warehouse=*/1, /*item_lo=*/0,
                            /*item_hi=*/int32_t(params.items),
                            /*quantity_lo=*/1, /*quantity_hi=*/6);
    double base = 0;
    for (uint32_t threads : thread_counts) {
      const double secs = BestSeconds(3, [&] {
        buffers.Clear();
        QueryResult result = executor.Execute(txn, query, threads);
        if (result.positions.empty()) std::abort();  // keep work observable
      });
      if (threads == 1) base = secs;
      Record("query_e2e", threads, secs, rows, base);
    }
    // Materialization alone: project every row of a selective scan.
    Query wide;
    wide.predicates.push_back(
        Predicate::Between(kOlQuantity, Value(int32_t{1}), Value(int32_t{3})));
    wide.projections = {kOlOId, kOlIId, kOlAmount, kOlDistInfo};
    base = 0;
    for (uint32_t threads : thread_counts) {
      size_t materialized = 0;
      const double secs = BestSeconds(3, [&] {
        buffers.Clear();
        QueryResult result = executor.Execute(txn, wide, threads);
        materialized = result.rows.size();
      });
      if (threads == 1) base = secs;
      Record("materialize", threads, secs, materialized, base);
    }
    txns.Abort(&txn);
  }

  std::printf("\npool: %zu helper threads (override with HYTAP_THREADS)\n",
              ThreadPool::Global().helper_count());
  WriteJson("BENCH_parallel_scaling.json");
  bench::MaybeWriteMetricsSnapshot("parallel_scaling");
  return 0;
}

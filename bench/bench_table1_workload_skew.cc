// Reproduces Table I: "Analysis of attribute usage of the five largest
// tables of the financial module in a production SAP ERP system."
//
// The generators are calibrated to the published aggregate statistics; this
// bench re-derives the skew from the generated plan-cache workloads and
// prints the paper's table next to the measured values.

#include <cstdio>

#include "bench/bench_util.h"
#include "workload/enterprise.h"

using namespace hytap;

int main() {
  bench::PrintHeader(
      "Table I: attribute filtering skew of SAP ERP financial tables");
  std::printf("%-8s %12s | %10s %10s | %16s %16s\n", "Table", "Attributes",
              "Filtered", "(paper)", "Filtered >=1%", "(paper)");
  for (const EnterpriseProfile& profile : SapErpProfiles()) {
    Workload workload = GenerateEnterpriseWorkload(profile, /*seed=*/42);
    WorkloadSkew skew = AnalyzeSkew(workload, /*hot_share=*/0.01);
    std::printf("%-8s %12zu | %10zu %10zu | %16zu %16zu\n",
                profile.table_name.c_str(), workload.column_count(),
                skew.filtered_count, profile.filtered_count,
                skew.hot_filtered_count, profile.hot_filtered_count);
  }
  std::printf(
      "\nbytes never filtered (eligible for free eviction): "
      "BSEG-like tables ~%.0f%%\n",
      100.0 * AnalyzeSkew(GenerateEnterpriseWorkload(BsegProfile(), 42))
                  .unfiltered_byte_share);
  bench::MaybeWriteMetricsSnapshot("table1_workload_skew");
  return 0;
}

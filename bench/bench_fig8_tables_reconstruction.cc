// Reproduces Figure 8: "Latency box plot for full-width tuple
// reconstructions on tables ORDERLINE and BSEG (uniform- and
// zipfian-distributed accesses)."
//
// Placements follow the paper: BSEG = 20 MRC attributes + 325 in the SSCG;
// ORDERLINE = 4 MRC + 6 in the SSCG. IMDB (MRC) denotes the fully
// DRAM-resident dictionary-encoded baseline.
//
// Expected shape: for the wide BSEG table the SSCG variants on fast devices
// match or beat the DRAM baseline (up to ~2x for uniform accesses on the
// paper's testbed); for the narrow ORDERLINE table tiering costs ~70% for
// uniform accesses; zipfian accesses benefit from the page cache.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/tiered_table.h"
#include "query/tuple_reconstructor.h"
#include "workload/enterprise.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

void Report(const char* table_name, const char* device,
            const char* distribution, const LatencyStats& stats) {
  std::printf("%-10s %-10s %-8s  p50 %8.1f  mean %8.1f  p95 %8.1f  "
              "p99 %8.1f us\n",
              table_name, device, distribution, double(stats.p50_ns) / 1e3,
              stats.mean_ns / 1e3, double(stats.p95_ns) / 1e3,
              double(stats.p99_ns) / 1e3);
}

void RunTable(const char* name, const Schema& schema,
              const std::vector<Row>& data, size_t mrc_columns,
              size_t reconstructions) {
  // IMDB (MRC) baseline.
  {
    TieredTable table(name, schema, TieredTableOptions{});
    table.Load(data);
    TupleReconstructor reconstructor(&table.table());
    Report(name, "IMDB(MRC)", "uniform",
           reconstructor.RunBatch(reconstructions,
                                  AccessDistribution::kUniform, 1, 13));
    Report(name, "IMDB(MRC)", "zipfian",
           reconstructor.RunBatch(reconstructions,
                                  AccessDistribution::kZipfian, 1, 13));
  }
  for (DeviceKind device : kSecondaryDevices) {
    if (device == DeviceKind::kHdd) continue;  // paper: HDD excluded
    TieredTableOptions options;
    options.device = device;
    options.cache_share = 0.02;
    options.min_frames = 4;
    TieredTable table(name, schema, options);
    table.Load(data);
    std::vector<bool> placement(schema.size(), false);
    for (size_t c = 0; c < mrc_columns; ++c) placement[c] = true;
    if (!table.ApplyPlacement(placement).ok()) return;
    TupleReconstructor reconstructor(&table.table());
    Report(name, DeviceKindName(device), "uniform",
           reconstructor.RunBatch(reconstructions,
                                  AccessDistribution::kUniform, 1, 13));
    Report(name, DeviceKindName(device), "zipfian",
           reconstructor.RunBatch(reconstructions,
                                  AccessDistribution::kZipfian, 1, 13));
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  bench::PrintHeader("Figure 8: tuple reconstruction, ORDERLINE and BSEG");

  // ORDERLINE: narrow (10 attributes), 4 MRC + 6 SSCG.
  OrderlineParams ol_params;
  ol_params.warehouses = small ? 2 : 6;
  ol_params.districts_per_warehouse = 10;
  ol_params.orders_per_district = small ? 30 : 100;
  RunTable("ORDERLINE", OrderlineSchema(),
           GenerateOrderlineRows(ol_params), 4, small ? 1000 : 5000);

  // BSEG: wide (345 attributes), 20 MRC + 325 SSCG.
  EnterpriseProfile bseg = BsegProfile();
  const size_t bseg_rows = small ? 2000 : 10000;
  RunTable("BSEG", MakeEnterpriseSchema(bseg),
           GenerateEnterpriseRows(bseg, bseg_rows, 7), 20,
           small ? 800 : 3000);

  std::printf("-> runtimes are dominated by the SSCG width: wide BSEG "
              "tuples reconstruct from one page and beat the DRAM baseline "
              "on fast devices; narrow ORDERLINE tuples pay the device "
              "latency (paper Fig. 8).\n");
  bench::MaybeWriteMetricsSnapshot("fig8_tables_reconstruction");
  return 0;
}

// Micro-benchmarks of the storage-engine building blocks (real wall time,
// google-benchmark): dictionary encode/lookup, bit-packed access, B+-tree,
// MRC scan/probe, buffer-manager fetch, and the selection solvers.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "selection/selectors.h"
#include "storage/bit_packed_vector.h"
#include "storage/bplus_tree.h"
#include "storage/dictionary_column.h"
#include "tiering/buffer_manager.h"
#include "workload/example1.h"

namespace hytap {
namespace {

void BM_DictionaryBuild(benchmark::State& state) {
  Rng rng(1);
  std::vector<int32_t> values;
  for (int64_t i = 0; i < state.range(0); ++i) {
    values.push_back(int32_t(rng.NextBounded(100000)));
  }
  for (auto _ : state) {
    auto dict = OrderPreservingDictionary<int32_t>::Build(values);
    benchmark::DoNotOptimize(dict.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DictionaryBuild)->Arg(10000)->Arg(100000);

void BM_DictionaryLookup(benchmark::State& state) {
  Rng rng(1);
  std::vector<int32_t> values;
  for (int i = 0; i < 100000; ++i) {
    values.push_back(int32_t(rng.NextBounded(100000)));
  }
  auto dict = OrderPreservingDictionary<int32_t>::Build(values);
  int32_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dict.CodeFor(probe));
    probe = (probe + 7919) % 100000;
  }
}
BENCHMARK(BM_DictionaryLookup);

void BM_BitPackedGet(benchmark::State& state) {
  BitPackedVector v(uint32_t(state.range(0)));
  const uint64_t mask = (1ULL << state.range(0)) - 1;
  for (uint64_t i = 0; i < 100000; ++i) v.Append(i & mask);
  size_t idx = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(v.Get(idx));
    idx = (idx + 7919) % 100000;
  }
}
BENCHMARK(BM_BitPackedGet)->Arg(7)->Arg(13)->Arg(31);

void BM_BPlusTreeInsert(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    state.PauseTiming();
    BPlusTree<int64_t, uint64_t> tree;
    state.ResumeTiming();
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert(int64_t(rng.NextBounded(1u << 20)), uint64_t(i));
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BPlusTreeInsert)->Arg(10000);

void BM_BPlusTreeLookup(benchmark::State& state) {
  Rng rng(1);
  BPlusTree<int64_t, uint64_t> tree;
  for (int64_t i = 0; i < 100000; ++i) {
    tree.Insert(int64_t(rng.NextBounded(1u << 20)), uint64_t(i));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(probe));
    probe = (probe + 7919) % (1 << 20);
  }
}
BENCHMARK(BM_BPlusTreeLookup);

void BM_MrcScan(benchmark::State& state) {
  Rng rng(1);
  std::vector<int32_t> values;
  for (int64_t i = 0; i < state.range(0); ++i) {
    values.push_back(int32_t(rng.NextBounded(1000)));
  }
  auto column = DictionaryColumn<int32_t>::Build(values);
  Value v(int32_t{5});
  for (auto _ : state) {
    PositionList out;
    column->ScanBetween(&v, &v, &out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MrcScan)->Arg(100000)->Arg(1000000);

void BM_BufferManagerHit(benchmark::State& state) {
  SecondaryStore store(DeviceKind::kXpoint);
  for (int i = 0; i < 64; ++i) store.AllocatePage();
  BufferManager buffers(&store, 64);
  for (PageId id = 0; id < 64; ++id) {
    buffers.FetchPage(id, AccessPattern::kRandom);
  }
  PageId id = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(buffers.FetchPage(id, AccessPattern::kRandom));
    id = (id + 17) % 64;
  }
}
BENCHMARK(BM_BufferManagerHit);

void BM_ExplicitSelection(benchmark::State& state) {
  Workload workload = GenerateScalabilityWorkload(size_t(state.range(0)),
                                                  size_t(state.range(0)) * 10,
                                                  7);
  auto problem = SelectionProblem::FromRelativeBudget(
      workload, ScanCostParams{1.0, 100.0}, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectExplicit(problem).dram_bytes);
  }
}
BENCHMARK(BM_ExplicitSelection)->Arg(1000)->Arg(10000);

void BM_IntegerSelection(benchmark::State& state) {
  Workload workload = GenerateScalabilityWorkload(size_t(state.range(0)),
                                                  size_t(state.range(0)) * 10,
                                                  7);
  auto problem = SelectionProblem::FromRelativeBudget(
      workload, ScanCostParams{1.0, 100.0}, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SelectIntegerOptimal(problem).dram_bytes);
  }
}
BENCHMARK(BM_IntegerSelection)->Arg(1000);

}  // namespace
}  // namespace hytap

// Expanded BENCHMARK_MAIN() so the optional metrics snapshot can be written
// after the benchmark run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  hytap::bench::MaybeWriteMetricsSnapshot("micro_engine");
  return 0;
}

// Overhead of the observability layer on the query fast path: the metrics
// registry (HYTAP_METRICS), per-query tracing (HYTAP_TRACE), the workload
// monitor (HYTAP_WORKLOAD_MONITOR), the flight recorder
// (HYTAP_FLIGHT_RECORDER), and latency phase accounting
// (HYTAP_PHASE_ACCOUNTING) on vs off, over a Fig. 9-style tiered table
// (DRAM id column + width-10 tiered payload) driven end-to-end through the
// executor, through the raw MRC scan kernel, and through the serving front
// end (whose admit/dispatch/complete path is the recorder's per-query hot
// path). Acceptance targets: metrics <= 3 %, monitor <= 3 %, flight
// recorder <= 3 %, phase accounting <= 3 %, tracing <= 10 % on the
// executor mix. Reps alternate configurations in-process (min-of-N,
// machine drift cancels). Results go to
// BENCH_observability_overhead.json; a missed gate fails the process
// (CI runs this with --small).

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flight_recorder.h"
#include "common/metrics.h"
#include "common/phases.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/tiered_table.h"
#include "query/executor.h"
#include "serving/latency_profiler.h"
#include "serving/session_manager.h"
#include "storage/sscg.h"
#include "workload/workload_monitor.h"
#include "storage/table.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"
#include "txn/transaction_manager.h"

using namespace hytap;

namespace {

constexpr double kMetricsGatePct = 3.0;
constexpr double kMonitorGatePct = 3.0;
constexpr double kFlightGatePct = 3.0;
constexpr double kPhaseGatePct = 3.0;
constexpr double kTraceGatePct = 10.0;
/// Absolute slack added to each gate: sub-millisecond deltas on small CI
/// runs are timer noise, not overhead.
constexpr double kNoiseFloorSeconds = 0.0005;

struct Sample {
  const char* workload;
  double baseline_seconds;  // every observability knob off
  double metrics_seconds;   // metrics on only
  double trace_seconds;     // trace on only
  double monitor_seconds;   // workload monitor on only
  double flight_seconds;    // flight recorder on only
  double phases_seconds;    // phase accounting on only
  double MetricsPct() const {
    return 100.0 * (metrics_seconds - baseline_seconds) / baseline_seconds;
  }
  double TracePct() const {
    return 100.0 * (trace_seconds - baseline_seconds) / baseline_seconds;
  }
  double MonitorPct() const {
    return 100.0 * (monitor_seconds - baseline_seconds) / baseline_seconds;
  }
  double FlightPct() const {
    return 100.0 * (flight_seconds - baseline_seconds) / baseline_seconds;
  }
  double PhasesPct() const {
    return 100.0 * (phases_seconds - baseline_seconds) / baseline_seconds;
  }
};

std::vector<Sample> g_samples;

/// Runs `fn` under baseline / metrics-only / trace-only / monitor-only /
/// flight-only / phases-only configurations, alternating within each rep
/// after one untimed warmup, and keeps the best time per configuration.
template <typename Fn>
Sample MeasureConfigs(const char* workload, int reps, Fn&& fn) {
  auto configure = [](bool metrics, bool trace, bool monitor, bool flight,
                      bool phases) {
    SetMetricsEnabled(metrics);
    SetTraceEnabled(trace);
    SetWorkloadMonitorEnabled(monitor);
    SetFlightRecorderEnabled(flight);
    SetPhaseAccountingEnabled(phases);
  };
  configure(false, false, false, false, false);
  fn();
  Sample sample{workload, 1e100, 1e100, 1e100, 1e100, 1e100, 1e100};
  for (int r = 0; r < reps; ++r) {
    configure(false, false, false, false, false);
    bench::Stopwatch base_watch;
    fn();
    sample.baseline_seconds = std::min(sample.baseline_seconds,
                                       base_watch.Seconds());
    configure(true, false, false, false, false);
    bench::Stopwatch metrics_watch;
    fn();
    sample.metrics_seconds = std::min(sample.metrics_seconds,
                                      metrics_watch.Seconds());
    configure(false, true, false, false, false);
    bench::Stopwatch trace_watch;
    fn();
    sample.trace_seconds = std::min(sample.trace_seconds,
                                    trace_watch.Seconds());
    configure(false, false, true, false, false);
    bench::Stopwatch monitor_watch;
    fn();
    sample.monitor_seconds = std::min(sample.monitor_seconds,
                                      monitor_watch.Seconds());
    configure(false, false, false, true, false);
    bench::Stopwatch flight_watch;
    fn();
    sample.flight_seconds = std::min(sample.flight_seconds,
                                     flight_watch.Seconds());
    configure(false, false, false, false, true);
    bench::Stopwatch phases_watch;
    fn();
    sample.phases_seconds = std::min(sample.phases_seconds,
                                     phases_watch.Seconds());
  }
  configure(true, false, true, true, true);  // engine defaults
  g_samples.push_back(sample);
  std::printf("  %-12s baseline: %9.2f ms   metrics: %9.2f ms (%+5.2f %%)   "
              "trace: %9.2f ms (%+5.2f %%)   monitor: %9.2f ms (%+5.2f %%)   "
              "flight: %9.2f ms (%+5.2f %%)   phases: %9.2f ms (%+5.2f %%)\n",
              workload, sample.baseline_seconds * 1e3,
              sample.metrics_seconds * 1e3, sample.MetricsPct(),
              sample.trace_seconds * 1e3, sample.TracePct(),
              sample.monitor_seconds * 1e3, sample.MonitorPct(),
              sample.flight_seconds * 1e3, sample.FlightPct(),
              sample.phases_seconds * 1e3, sample.PhasesPct());
  return sample;
}

bool GatePasses(const Sample& sample, double gate_pct, double on_seconds) {
  const double allowed = std::max(
      sample.baseline_seconds * gate_pct / 100.0, kNoiseFloorSeconds);
  return on_seconds - sample.baseline_seconds <= allowed;
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_samples.size(); ++i) {
    const Sample& s = g_samples[i];
    std::fprintf(
        f,
        "  {\"workload\": \"%s\", \"baseline_seconds\": %.6f, "
        "\"metrics_seconds\": %.6f, \"trace_seconds\": %.6f, "
        "\"monitor_seconds\": %.6f, \"flight_seconds\": %.6f, "
        "\"phases_seconds\": %.6f, "
        "\"metrics_overhead_pct\": %.3f, \"trace_overhead_pct\": %.3f, "
        "\"monitor_overhead_pct\": %.3f, \"flight_overhead_pct\": %.3f, "
        "\"phases_overhead_pct\": %.3f}%s\n",
        s.workload, s.baseline_seconds, s.metrics_seconds, s.trace_seconds,
        s.monitor_seconds, s.flight_seconds, s.phases_seconds,
        s.MetricsPct(), s.TracePct(), s.MonitorPct(), s.FlightPct(),
        s.PhasesPct(), i + 1 < g_samples.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

constexpr size_t kPayloadWidth = 10;

Schema TableSchema() {
  Schema schema;
  schema.push_back({"id", DataType::kInt32, 0});
  for (size_t c = 0; c < kPayloadWidth; ++c) {
    schema.push_back({"p" + std::to_string(c), DataType::kInt32, 0});
  }
  return schema;
}

std::vector<Row> TableRows(size_t rows) {
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(1 + kPayloadWidth);
    row.emplace_back(int32_t(r));
    for (size_t c = 0; c < kPayloadWidth; ++c) {
      row.emplace_back(int32_t((r * 31 + c) % 1000));
    }
    data.push_back(std::move(row));
  }
  return data;
}

/// Alternating selective (probe-side) and wide (rescan-side) conjunctions,
/// mirroring the Fig. 9 access patterns through the executor.
std::vector<Query> QueryMix(size_t rows) {
  std::vector<Query> queries;
  for (size_t q = 0; q < 8; ++q) {
    Query query;
    const ColumnId payload = ColumnId(1 + q % kPayloadWidth);
    if (q % 2 == 0) {
      const int32_t lo = int32_t((q * rows) / 16);
      query.predicates.push_back(Predicate::Between(
          0, Value(lo), Value(int32_t(lo + rows / 64))));
      query.predicates.push_back(
          Predicate::Equals(payload, Value(int32_t(q % 7))));
    } else {
      query.predicates.push_back(Predicate::Between(
          payload, Value(int32_t{0}), Value(int32_t{750})));
      query.predicates.push_back(Predicate::Between(
          0, Value(int32_t{0}), Value(int32_t(rows - 1))));
    }
    query.aggregates = {Aggregate::Count()};
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  const size_t rows = small ? 50000 : 200000;
  const int reps = small ? 5 : 7;

  bench::PrintHeader("observability overhead: executor mix (Fig. 9 table)");
  Sample executor_sample;
  {
    TransactionManager txns;
    SecondaryStore store(DeviceKind::kCssd, 42);
    BufferManager buffers(&store, 1024);
    Table table("fig9", TableSchema(), &txns, &store, &buffers);
    table.BulkLoad(TableRows(rows));
    std::vector<bool> placement(1 + kPayloadWidth, false);
    placement[0] = true;
    if (!table.SetPlacement(placement).ok()) return 1;
    std::printf("%zu rows, id in DRAM, %zu payload columns tiered\n", rows,
                kPayloadWidth);

    QueryExecutor executor(&table);
    // The monitor config exercises the full observation path: per-step
    // IoStats deltas, windowing, and the ring roll on the simulated clock.
    WorkloadMonitor monitor(table.column_count());
    executor.set_monitor(&monitor);
    Transaction txn = txns.Begin();
    const std::vector<Query> queries = QueryMix(rows);
    // The phases config pays the stamping cost only when a caller asks for
    // the decomposition, so the mix requests it the way a serving session
    // would: a PhaseVector wired through ExecOptions.
    PhaseVector phases;
    ExecOptions eopts;
    eopts.threads = 2;
    eopts.phases = &phases;
    executor_sample = MeasureConfigs("query_mix", reps, [&] {
      buffers.Clear();
      for (const Query& query : queries) {
        QueryResult result = executor.Execute(txn, query, eopts);
        if (!result.status.ok()) std::abort();
      }
    });
    txns.Abort(&txn);
  }

  bench::PrintHeader("observability overhead: raw MRC scan kernel");
  Sample scan_sample;
  {
    SecondaryStore store(DeviceKind::kCssd, 42);
    Schema schema = TableSchema();
    std::vector<ColumnId> members;
    for (ColumnId c = 0; c <= kPayloadWidth; ++c) members.push_back(c);
    Sscg sscg(RowLayout(schema, members), TableRows(rows), &store);
    BufferManager buffers(&store, 64);
    const size_t sweeps = small ? 4 : 8;
    scan_sample = MeasureConfigs("mrc_scan", reps, [&] {
      for (size_t s = 0; s < sweeps; ++s) {
        buffers.Clear();
        PositionList out;
        IoStats io;
        Value lo(int32_t{100}), hi(int32_t{400});
        sscg.ScanSlot(1, &lo, &hi, &buffers, 2, &out, &io);
        if (out.empty()) std::abort();
      }
    });
  }

  bench::PrintHeader("observability overhead: serving front end");
  Sample serving_sample;
  {
    // The serving path is where the always-on recorder actually writes:
    // admit + dispatch + terminal events per session, plus the ticket-order
    // flush. Sessions re-submit the executor mix through the front end.
    TieredTableOptions options;
    options.device = DeviceKind::kCssd;
    options.timing_seed = 42;
    TieredTable table("fig9srv", TableSchema(), options);
    table.Load(TableRows(small ? 20000 : 50000));
    SessionOptions so;
    so.max_sessions = 2;
    so.default_threads = 1;
    SessionManager& sm = table.EnableServing(so);
    // The phases config additionally pays the profiler fold at every
    // ticket-order flush (histograms + tail test + attribution walk).
    LatencyProfiler profiler;
    sm.set_latency_profiler(&profiler);
    const std::vector<Query> queries = QueryMix(small ? 20000 : 50000);
    serving_sample = MeasureConfigs("serving_mix", reps, [&] {
      std::vector<SessionHandle> handles;
      handles.reserve(queries.size() * 4);
      for (size_t pass = 0; pass < 4; ++pass) {
        for (const Query& query : queries) {
          SubmitOptions sopts;
          sopts.query_class = handles.size() % 2 == 0 ? QueryClass::kOltp
                                                      : QueryClass::kOlap;
          auto session = sm.Submit(query, sopts);
          if (!session.ok()) std::abort();
          handles.push_back(*session);
        }
      }
      for (const SessionHandle& session : handles) {
        if (!session->Await().status.ok()) std::abort();
      }
    });
    sm.Drain();
    sm.set_latency_profiler(nullptr);  // profiler dies before the table
  }

  const bool metrics_ok =
      GatePasses(executor_sample, kMetricsGatePct,
                 executor_sample.metrics_seconds) &&
      GatePasses(scan_sample, kMetricsGatePct, scan_sample.metrics_seconds);
  // Tracing and the workload monitor live only on the executor's control
  // path; the raw scan kernel never sees those knobs, so their gates cover
  // the executor mix.
  const bool trace_ok = GatePasses(executor_sample, kTraceGatePct,
                                   executor_sample.trace_seconds);
  const bool monitor_ok = GatePasses(executor_sample, kMonitorGatePct,
                                     executor_sample.monitor_seconds);
  // The recorder gate covers every workload: the fast paths only pay the
  // enabled-check (executor / scan), the serving mix pays the per-event
  // seqlock writes.
  const bool flight_ok =
      GatePasses(executor_sample, kFlightGatePct,
                 executor_sample.flight_seconds) &&
      GatePasses(scan_sample, kFlightGatePct, scan_sample.flight_seconds) &&
      GatePasses(serving_sample, kFlightGatePct,
                 serving_sample.flight_seconds);
  // Phase accounting touches the executor's pass boundaries (four IoStats
  // snapshots per query) and the serving flush (profiler fold per ticket);
  // the raw scan kernel has no phase hook, so its gate covers those two.
  const bool phases_ok =
      GatePasses(executor_sample, kPhaseGatePct,
                 executor_sample.phases_seconds) &&
      GatePasses(serving_sample, kPhaseGatePct,
                 serving_sample.phases_seconds);
  std::printf("\ntargets: metrics <= %.0f %% -> %s   trace <= %.0f %% -> %s   "
              "monitor <= %.0f %% -> %s   flight <= %.0f %% -> %s   "
              "phases <= %.0f %% -> %s\n",
              kMetricsGatePct, metrics_ok ? "PASS" : "MISS", kTraceGatePct,
              trace_ok ? "PASS" : "MISS", kMonitorGatePct,
              monitor_ok ? "PASS" : "MISS", kFlightGatePct,
              flight_ok ? "PASS" : "MISS", kPhaseGatePct,
              phases_ok ? "PASS" : "MISS");

  WriteJson("BENCH_observability_overhead.json");
  bench::MaybeWriteMetricsSnapshot("observability_overhead");
  return metrics_ok && trace_ok && monitor_ok && flight_ok && phases_ok
             ? 0
             : 1;
}

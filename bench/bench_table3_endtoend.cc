// Reproduces Table III: end-to-end impact of tiering on TPC-C's delivery
// transaction and CH-benCHmark query #19.
//
// Paper results (300M-row ORDERLINE on their testbed):
//   TPC-C delivery @ 80% evicted: 1.02x slowdown
//   CH-query #19   @ 80% evicted: 6.70x slowdown (evaluation of tiered
//                                 ol_quantity dominates)
//   CH-query #19   @ 63% evicted: 1.12x (ol_delivery_d and ol_quantity back
//                                 in DRAM; only ol_amount materialized
//                                 narrowly from the SSCG)
//
// Two effects make delivery insensitive to tiering and we reproduce both:
// the transactional path filters only DRAM-resident primary-key columns, and
// it touches *recent* orders whose SSCG pages stay in the page cache.
// CH-19 sweeps cold data and pays for the tiered ol_quantity evaluation.

#include <cstdio>

#include "bench/bench_util.h"
#include "core/tiered_table.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

constexpr int32_t kWarehouses = 20;
constexpr int32_t kOrdersPerDistrict = 150;

struct Latencies {
  double delivery_ns = 0;
  double ch19_ns = 0;
};

Latencies Measure(TieredTable* table) {
  Transaction txn = table->Begin();
  Latencies lat;
  // Delivery processes the oldest *undelivered* orders - a narrow band of
  // recent order ids. Warm the band once (steady-state page cache), then
  // measure.
  auto delivery = [&](int i) {
    return DeliveryQuery(1 + i % kWarehouses, 1 + i % 10,
                         kOrdersPerDistrict - i % 12);
  };
  for (int i = 0; i < 48; ++i) table->ExecuteUnrecorded(txn, delivery(i));
  const int delivery_runs = 48;
  for (int i = 0; i < delivery_runs; ++i) {
    QueryResult r = table->ExecuteUnrecorded(txn, delivery(i));
    lat.delivery_ns += double(r.io.TotalNs());
  }
  lat.delivery_ns /= delivery_runs;
  // CH-19: analytical sweep over cold data (no warmup by design).
  const int ch_runs = 4;
  for (int i = 0; i < ch_runs; ++i) {
    // Narrow item band and a single quantity value: at the paper's 300M-row
    // scale CH-19's result set is a vanishing fraction of the table, which
    // keeps the SSCG materialization small relative to the scan work.
    QueryResult r = table->ExecuteUnrecorded(
        txn, ChQuery19(1 + i % kWarehouses, 1, 500, 1, 1));
    lat.ch19_ns += double(r.io.TotalNs());
  }
  lat.ch19_ns /= ch_runs;
  return lat;
}

double EvictedShare(const TieredTable& table) {
  double total = 0, evicted = 0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
    if (table.table().location(c) == ColumnLocation::kSecondary) {
      evicted += double(table.table().ColumnDramBytes(c));
    }
  }
  return evicted / total;
}

}  // namespace

int main() {
  OrderlineParams params;
  params.warehouses = kWarehouses;
  params.districts_per_warehouse = 10;
  params.orders_per_district = kOrdersPerDistrict;  // ~300k order lines
  params.items = 2000;

  TieredTableOptions options;
  options.device = DeviceKind::kCssd;  // consumer NAND tier
  options.cache_share = 0.02;
  TieredTable table("orderline", OrderlineSchema(), options);
  table.Load(GenerateOrderlineRows(params));

  bench::PrintHeader("Table III: TPC-C / CH-benCHmark slowdowns (CSSD)");
  std::printf("rows: %zu\n\n", table.table().row_count());

  Latencies baseline = Measure(&table);
  std::printf("baseline (all DRAM): delivery %.1f us, CH-19 %.1f us\n\n",
              baseline.delivery_ns / 1e3, baseline.ch19_ns / 1e3);

  std::printf("%-36s %13s %11s %11s\n", "configuration", "data evicted",
              "delivery", "CH-19");

  // Tight budget (paper: w = 0.2): the PK columns plus the join column stay
  // DRAM-resident ("the join predicate on ol_i_id and the predicate on
  // ol_w_id are not impacted"); ol_quantity is tiered.
  std::vector<bool> tight(10, false);
  for (ColumnId c : OrderlinePrimaryKey()) tight[c] = true;
  tight[kOlIId] = true;
  if (!table.ApplyPlacement(tight).ok()) return 1;
  Latencies at_tight = Measure(&table);
  std::printf("%-36s %12.0f%% %10.2fx %10.2fx   (paper: 1.02x / 6.70x)\n",
              "w=0.2: PK + ol_i_id in DRAM", 100.0 * EvictedShare(table),
              at_tight.delivery_ns / baseline.delivery_ns,
              at_tight.ch19_ns / baseline.ch19_ns);

  // Larger budget (paper: w = 0.4): ol_delivery_d and ol_quantity return to
  // DRAM; ol_amount is materialized narrowly from the SSCG.
  std::vector<bool> roomy = tight;
  roomy[kOlDeliveryD] = true;
  roomy[kOlQuantity] = true;
  if (!table.ApplyPlacement(roomy).ok()) return 1;
  Latencies at_roomy = Measure(&table);
  std::printf("%-36s %12.0f%% %10.2fx %10.2fx   (paper:   -   / 1.12x)\n",
              "w=0.4: + ol_delivery_d, ol_quantity",
              100.0 * EvictedShare(table),
              at_roomy.delivery_ns / baseline.delivery_ns,
              at_roomy.ch19_ns / baseline.ch19_ns);
  bench::MaybeWriteMetricsSnapshot("table3_endtoend");
  return 0;
}

// Data-skipping effectiveness: zone maps, SSCG slot synopses, and the
// candidate-restricted rescan, measured with HYTAP_ZONE_MAPS on vs off on
// the same data and queries. Results must be bit-identical either way — the
// skipping layer only removes provably irrelevant work.
//
// Acceptance gate (ISSUE 3): a 0.1%-selectivity predicate over a tiered
// (clustered) column must show >= 5x fewer `page_reads` with pruning on
// than off. The process exits non-zero if the gate fails, so the CI bench
// smoke job doubles as a regression check.
//
// Results are printed as tables and written to BENCH_data_skipping.json.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "query/executor.h"
#include "query/scan.h"
#include "storage/dictionary_column.h"
#include "storage/sscg.h"
#include "storage/table.h"
#include "storage/zone_map.h"

using namespace hytap;

namespace {

struct Sample {
  std::string op;
  uint32_t threads;
  uint64_t value_off;  // counter with skipping off
  uint64_t value_on;   // same counter with skipping on
  uint64_t pruned;     // pages/morsels pruned with skipping on
};

std::vector<Sample> g_samples;

void Record(const char* op, uint32_t threads, uint64_t off, uint64_t on,
            uint64_t pruned) {
  g_samples.push_back({op, threads, off, on, pruned});
  const double ratio = on == 0 ? double(off) : double(off) / double(on);
  std::printf("  %-24s %2u threads: off=%8llu  on=%8llu  pruned=%8llu  "
              "(%.1fx)\n",
              op, threads, (unsigned long long)off, (unsigned long long)on,
              (unsigned long long)pruned, ratio);
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_samples.size(); ++i) {
    const Sample& s = g_samples[i];
    std::fprintf(f,
                 "  {\"op\": \"%s\", \"threads\": %u, \"off\": %llu, "
                 "\"on\": %llu, \"pruned\": %llu}%s\n",
                 s.op.c_str(), s.threads, (unsigned long long)s.value_off,
                 (unsigned long long)s.value_on,
                 (unsigned long long)s.pruned,
                 i + 1 < g_samples.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void RequireIdentical(const PositionList& a, const PositionList& b,
                      const char* what) {
  if (a != b) {
    std::fprintf(stderr, "FAIL: %s results differ with skipping on vs off "
                         "(%zu vs %zu positions)\n",
                 what, a.size(), b.size());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  bool gate_passed = true;

  // --- SSCG slot synopsis: the acceptance-gate measurement. Clustered
  // (sorted) tiered column, 0.1%-selectivity range predicate: only the
  // pages whose value span overlaps the range are fetched. ---
  bench::PrintHeader("SSCG synopsis pruning (clustered column, 0.1% sel)");
  {
    const size_t rows = small ? 50000 : 200000;
    const size_t width = 10;  // 40-byte rows: ~102 rows per 4 KB page
    Schema schema;
    for (size_t c = 0; c < width; ++c) {
      schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
    }
    std::vector<Row> data;
    data.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      Row row;
      row.reserve(width);
      for (size_t c = 0; c < width; ++c) {
        row.emplace_back(int32_t(r));  // clustered: page spans are disjoint
      }
      data.push_back(std::move(row));
    }
    SecondaryStore store(DeviceKind::kCssd);
    std::vector<ColumnId> members;
    for (ColumnId c = 0; c < width; ++c) members.push_back(c);
    Sscg sscg(RowLayout(schema, members), data, &store);
    BufferManager buffers(&store, 16);  // tiny cache: scans hit the device
    const int32_t span = int32_t(rows / 1000);  // 0.1% of the rows
    const Value lo(int32_t(rows / 2));
    const Value hi(int32_t(rows / 2 + span - 1));
    std::printf("%zu rows, %zu pages, predicate spans %d values\n", rows,
                sscg.page_count(), span);

    PositionList off_out, on_out;
    IoStats off_io, on_io;
    SetZoneMapsEnabled(false);
    buffers.Clear();
    if (!sscg.ScanSlot(0, &lo, &hi, &buffers, 4, &off_out, &off_io).ok()) {
      return 1;
    }
    SetZoneMapsEnabled(true);
    buffers.Clear();
    if (!sscg.ScanSlot(0, &lo, &hi, &buffers, 4, &on_out, &on_io).ok()) {
      return 1;
    }
    RequireIdentical(off_out, on_out, "SSCG scan");
    Record("sscg_page_reads", 4, off_io.page_reads, on_io.page_reads,
           on_io.pages_pruned);
    Record("sscg_device_ns", 4, off_io.device_ns, on_io.device_ns,
           on_io.pages_pruned);
    if (on_io.page_reads * 5 > off_io.page_reads) {
      std::fprintf(stderr, "FAIL: page_reads reduction below the 5x gate "
                           "(off=%llu on=%llu)\n",
                   (unsigned long long)off_io.page_reads,
                   (unsigned long long)on_io.page_reads);
      gate_passed = false;
    }
  }

  // --- MRC zone maps: clustered dictionary column, selective range. Each
  // 64 Ki-row morsel is skipped before decode when its zone excludes the
  // code interval; report pruning and real wall time. ---
  bench::PrintHeader("MRC zone-map pruning (clustered dictionary column)");
  {
    const size_t rows = small ? 1000000 : 10000000;
    std::vector<int32_t> values;
    values.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
      values.push_back(int32_t(r / 1000));  // clustered, 1000-row runs
    }
    auto column = DictionaryColumn<int32_t>::Build(values);
    const Value lo(int32_t(rows / 2000)), hi(int32_t(rows / 2000 + 9));
    std::printf("%zu rows, ~0.1%% selectivity\n", rows);
    for (uint32_t threads : {1u, 4u}) {
      PositionList off_out, on_out;
      IoStats off_io, on_io;
      SetZoneMapsEnabled(false);
      bench::Stopwatch off_watch;
      ParallelScanColumn(*column, &lo, &hi, threads, &off_out, &off_io);
      const double off_secs = off_watch.Seconds();
      SetZoneMapsEnabled(true);
      bench::Stopwatch on_watch;
      ParallelScanColumn(*column, &lo, &hi, threads, &on_out, &on_io);
      const double on_secs = on_watch.Seconds();
      RequireIdentical(off_out, on_out, "MRC scan");
      Record("mrc_scan_us", threads, uint64_t(off_secs * 1e6),
             uint64_t(on_secs * 1e6), on_io.morsels_pruned);
    }
  }

  // --- Candidate-restricted rescan + end-to-end equivalence. The DRAM id
  // column is clustered, so the surviving candidates cover a narrow page
  // span of the tiered group; the payload values are uniform per page, so
  // the synopsis alone cannot prune — every page skipped below comes from
  // the candidate restriction on the scan-vs-probe switch. ---
  bench::PrintHeader("Candidate-restricted rescan + executor equivalence");
  {
    const size_t rows = small ? 50000 : 200000;
    Schema schema;
    schema.push_back({"id", DataType::kInt32, 0});
    for (size_t c = 1; c < 8; ++c) {
      schema.push_back({"p" + std::to_string(c), DataType::kInt32, 0});
    }
    std::vector<Row> data;
    data.reserve(rows);
    Rng rng(7);
    for (size_t r = 0; r < rows; ++r) {
      Row row;
      row.emplace_back(int32_t(r));  // clustered DRAM key
      for (size_t c = 1; c < 8; ++c) {
        row.emplace_back(int32_t(rng.NextBounded(1000)));  // unprunable
      }
      data.push_back(std::move(row));
    }
    TransactionManager txns;
    SecondaryStore store(DeviceKind::kCssd);
    BufferManager buffers(&store, 64);
    Table table("skip", schema, &txns, &store, &buffers);
    table.BulkLoad(data);
    std::vector<bool> placement(schema.size(), false);
    placement[0] = true;  // id stays in DRAM, payload is tiered
    if (!table.SetPlacement(placement).ok()) return 1;

    QueryExecutor executor(&table);
    Transaction txn = txns.Begin();
    // 2% of the ids (well above the probe threshold) + a payload range:
    // the executor rescans the tiered group, restricted to the candidates.
    Query query;
    query.predicates.push_back(Predicate::Between(
        0, Value(int32_t(rows / 4)), Value(int32_t(rows / 4 + rows / 50))));
    query.predicates.push_back(
        Predicate::Between(1, Value(int32_t{100}), Value(int32_t{499})));
    query.projections = {0, 2};
    query.aggregates = {Aggregate::Count(), Aggregate::Sum(3)};

    for (uint32_t threads : {1u, 2u, 4u}) {
      SetZoneMapsEnabled(false);
      buffers.Clear();
      QueryResult off = executor.Execute(txn, query, threads);
      SetZoneMapsEnabled(true);
      buffers.Clear();
      QueryResult on = executor.Execute(txn, query, threads);
      if (!off.status.ok() || !on.status.ok()) return 1;
      RequireIdentical(off.positions, on.positions, "executor");
      if (off.rows != on.rows || off.aggregate_values != on.aggregate_values ||
          off.candidate_trace != on.candidate_trace) {
        std::fprintf(stderr, "FAIL: executor rows/aggregates/trace differ\n");
        return 1;
      }
      Record("e2e_page_reads", threads, off.io.page_reads, on.io.page_reads,
             on.io.pages_pruned);
    }
    txns.Abort(&txn);
  }

  SetZoneMapsEnabled(true);
  WriteJson("BENCH_data_skipping.json");
  if (!gate_passed) {
    std::fprintf(stderr, "\nACCEPTANCE GATE FAILED\n");
    return 1;
  }
  std::printf("acceptance gate passed: >= 5x page_reads reduction\n");
  bench::MaybeWriteMetricsSnapshot("data_skipping");
  return 0;
}

// Reproduces Figure 4: "Example 1: admissible combinations of estimated
// runtime and DRAM budget for N = 50 columns and Q = 500 queries" — integer
// optimum, continuous solutions, and heuristics H1-H3.
//
// Expected shape: the integer solutions form the efficient frontier, the
// continuous solutions lie on it, and the heuristics are up to ~3x worse
// depending on the budget.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "selection/heuristics.h"
#include "selection/selectors.h"
#include "workload/example1.h"

using namespace hytap;

int main() {
  Example1Params gen;  // N = 50, Q = 500, the paper's setting
  Workload workload = GenerateExample1(gen);
  const ScanCostParams params{1.0, 100.0};
  CostModel model(workload, params);

  bench::PrintHeader(
      "Figure 4: estimated runtime vs DRAM budget (lower is better)");
  std::printf("%6s %12s %12s %12s %12s %12s\n", "w", "integer", "continuous",
              "H1", "H2", "H3");

  double worst_gap = 0.0;
  double worst_gap_w = 0.0;
  for (int step = 1; step <= 20; ++step) {
    const double w = std::min(1.0, 0.05 * step);
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, w);
    const double integer = SelectIntegerOptimal(problem).scan_cost;
    const double continuous =
        SelectExplicit(problem, /*filling=*/false).scan_cost;
    const double h1 =
        SelectHeuristic(problem, HeuristicKind::kH1Frequency).scan_cost;
    const double h2 =
        SelectHeuristic(problem, HeuristicKind::kH2Selectivity).scan_cost;
    const double h3 = SelectHeuristic(
        problem, HeuristicKind::kH3SelectivityPerFreq).scan_cost;
    std::printf("%6.2f %12.3g %12.3g %12.3g %12.3g %12.3g\n", w, integer,
                continuous, h1, h2, h3);
    const double best_heuristic = std::min({h1, h2, h3});
    const double gap = best_heuristic / integer;
    if (gap > worst_gap) {
      worst_gap = gap;
      worst_gap_w = w;
    }
  }
  std::printf("\nlargest optimum-vs-best-heuristic gap: %.2fx at w = %.2f "
              "(paper: up to 3x better than heuristics)\n",
              worst_gap, worst_gap_w);

  // Gap of each heuristic at a representative mid budget.
  auto problem = SelectionProblem::FromRelativeBudget(workload, params, 0.3);
  const double integer = SelectIntegerOptimal(problem).scan_cost;
  std::printf("at w = 0.30: H1 %.2fx, H2 %.2fx, H3 %.2fx of optimal\n",
              SelectHeuristic(problem, HeuristicKind::kH1Frequency)
                      .scan_cost / integer,
              SelectHeuristic(problem, HeuristicKind::kH2Selectivity)
                      .scan_cost / integer,
              SelectHeuristic(problem, HeuristicKind::kH3SelectivityPerFreq)
                      .scan_cost / integer);
  bench::MaybeWriteMetricsSnapshot("fig4_example1_heuristics");
  return 0;
}

// Reproduces Figure 6: structure of optimal solutions across DRAM budgets.
//  (a) integer optimum: complex, non-monotone column membership;
//  (b) continuous model: recursive structure (nested prefixes of the
//      performance order, Remark 1);
//  (c) continuous + filling (Remark 2): closely resembles (a).
//
// Rows are budgets w, columns are attributes ordered by performance order;
// '#' marks DRAM residence.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "selection/selectors.h"
#include "workload/example1.h"

using namespace hytap;

namespace {

void PrintMatrix(const char* title,
                 const std::vector<std::pair<double, std::vector<uint8_t>>>&
                     allocations,
                 const std::vector<uint32_t>& column_order) {
  std::printf("\n(%s)\n        ", title);
  std::printf("columns in performance order ->\n");
  for (const auto& [w, x] : allocations) {
    std::printf("w=%4.2f  ", w);
    for (uint32_t c : column_order) std::printf("%c", x[c] ? '#' : '.');
    std::printf("\n");
  }
}

}  // namespace

int main() {
  Example1Params gen;
  gen.num_columns = 40;
  gen.num_queries = 300;
  gen.seed = 11;
  Workload workload = GenerateExample1(gen);
  const ScanCostParams params{1.0, 100.0};

  SelectionProblem base;
  base.workload = &workload;
  base.params = params;
  ExplicitFrontier frontier = ComputeExplicitFrontier(base);
  std::vector<uint32_t> order;
  for (const FrontierPoint& point : frontier.points) {
    order.push_back(point.column);
  }
  // Columns never worth selecting come last.
  std::vector<bool> in_order(workload.column_count(), false);
  for (uint32_t c : order) in_order[c] = true;
  for (uint32_t c = 0; c < workload.column_count(); ++c) {
    if (!in_order[c]) order.push_back(c);
  }

  bench::PrintHeader("Figure 6: solution structure across budgets");
  std::vector<double> budgets;
  for (double w = 0.05; w <= 0.95; w += 0.09) budgets.push_back(w);

  std::vector<std::pair<double, std::vector<uint8_t>>> integer_rows,
      continuous_rows, filling_rows;
  for (double w : budgets) {
    auto problem =
        SelectionProblem::FromRelativeBudget(workload, params, w);
    integer_rows.emplace_back(w, SelectIntegerOptimal(problem).in_dram);
    continuous_rows.emplace_back(
        w, SelectExplicit(problem, /*filling=*/false).in_dram);
    filling_rows.emplace_back(
        w, SelectExplicit(problem, /*filling=*/true).in_dram);
  }
  PrintMatrix("a: optimal integer solutions", integer_rows, order);
  PrintMatrix("b: continuous solutions - recursive prefixes",
              continuous_rows, order);
  PrintMatrix("c: continuous solutions with filling (Remark 2)",
              filling_rows, order);

  // Quantify the paper's claims: (b) is strictly nested; (c) approximates
  // (a) better than (b).
  size_t nested_violations = 0;
  for (size_t r = 1; r < continuous_rows.size(); ++r) {
    for (size_t c = 0; c < workload.column_count(); ++c) {
      if (continuous_rows[r - 1].second[c] > continuous_rows[r].second[c]) {
        ++nested_violations;
      }
    }
  }
  double cost_gap_b = 0, cost_gap_c = 0;
  CostModel model(workload, params);
  for (size_t r = 0; r < budgets.size(); ++r) {
    const double integer = model.ScanCost(integer_rows[r].second);
    cost_gap_b += model.ScanCost(continuous_rows[r].second) / integer;
    cost_gap_c += model.ScanCost(filling_rows[r].second) / integer;
  }
  std::printf("\nnesting violations in (b): %zu (Remark 1 predicts 0)\n",
              nested_violations);
  std::printf("mean cost vs integer optimum: (b) %.3fx, (c) %.3fx "
              "(filling closes the gap)\n",
              cost_gap_b / budgets.size(), cost_gap_c / budgets.size());
  bench::MaybeWriteMetricsSnapshot("fig6_solution_structure");
  return 0;
}

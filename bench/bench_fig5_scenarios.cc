// Reproduces Figure 5: frontier behaviour across workload scenarios.
//
// The paper notes (§III-C/H) that heuristics can be adequate for special
// workloads but degrade once selection interaction matters, and that the
// efficient frontier is convex (diminishing marginal utility of DRAM). We
// sweep the interaction strength (co-occurrence probability) of Example-1
// instances and report (i) frontier convexity and (ii) the heuristic gap.

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.h"
#include "selection/heuristics.h"
#include "selection/selectors.h"
#include "workload/example1.h"

using namespace hytap;

int main() {
  const ScanCostParams params{1.0, 100.0};
  bench::PrintHeader("Figure 5: workload scenarios (interaction strength)");
  std::printf("%12s %16s %18s %18s %16s\n", "interaction", "convex frontier",
              "best-heuristic gap", "worst-heuristic gap",
              "no-discount gap");

  for (double interaction : {0.0, 0.3, 0.6, 0.9}) {
    Example1Params gen;
    gen.group_probability = interaction;
    gen.seed = 5;
    Workload workload = GenerateExample1(gen);
    CostModel model(workload, params);

    // Frontier: cost as a function of budget; convexity = non-increasing
    // marginal gain per budget step.
    std::vector<double> costs;
    double best_gap = 0.0, worst_gap = 0.0, no_discount_gap = 0.0;
    // A "frequency-count" model that ignores selection interaction: the
    // discount vanishes when all selectivities are treated as 1.
    Workload no_discount = workload;
    for (double& s : no_discount.selectivities) s = 1.0;
    for (double w = 0.1; w <= 0.9001; w += 0.1) {
      auto problem =
          SelectionProblem::FromRelativeBudget(workload, params, w);
      const double integer = SelectIntegerOptimal(problem).scan_cost;
      costs.push_back(integer);
      const double h1 =
          SelectHeuristic(problem, HeuristicKind::kH1Frequency).scan_cost;
      const double h2 =
          SelectHeuristic(problem, HeuristicKind::kH2Selectivity).scan_cost;
      const double h3 = SelectHeuristic(
          problem, HeuristicKind::kH3SelectivityPerFreq).scan_cost;
      best_gap = std::max(best_gap, std::min({h1, h2, h3}) / integer);
      worst_gap = std::max(worst_gap, std::max({h1, h2, h3}) / integer);
      auto naive_problem =
          SelectionProblem::FromRelativeBudget(no_discount, params, w);
      naive_problem.budget_bytes = problem.budget_bytes;
      auto naive = SelectIntegerOptimal(naive_problem);
      no_discount_gap = std::max(
          no_discount_gap, model.ScanCost(naive.in_dram) / integer);
    }
    // Convexity violations: marginal gains should shrink as w grows.
    size_t violations = 0;
    for (size_t k = 2; k < costs.size(); ++k) {
      const double gain_prev = costs[k - 2] - costs[k - 1];
      const double gain_here = costs[k - 1] - costs[k];
      if (gain_here > gain_prev * (1.0 + 1e-6)) ++violations;
    }
    std::printf("%12.1f %16s %17.2fx %17.2fx %15.2fx\n", interaction,
                violations == 0 ? "yes" : "mostly", best_gap, worst_gap,
                no_discount_gap);
  }
  std::printf("\n-> the efficient frontier is convex up to discreteness "
              "(diminishing marginal DRAM utility); models that ignore "
              "selection interaction pick measurably worse allocations, and "
              "single-metric heuristics trail the optimum everywhere.\n");
  bench::MaybeWriteMetricsSnapshot("fig5_scenarios");
  return 0;
}

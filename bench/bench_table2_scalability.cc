// Reproduces Table II: solver runtimes of the integer model vs the explicit
// solution for growing problem sizes (N columns, Q = 10N queries).
//
// The paper solves the ILP with MOSEK (runtimes up to ~2210 s at N = 50000)
// while the explicit solution answers in milliseconds. Our exact integer
// path is a branch-and-bound on the equivalent knapsack and is therefore
// much faster than a general ILP solver in absolute terms; to also show the
// general-solver shape we additionally run the continuous penalty model (5)
// through the dense simplex (the "standard solver" stand-in), which blows up
// quickly with N. The expected shape holds on both columns: general solver
// >> exact integer B&B >> explicit solution.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "selection/selectors.h"
#include "workload/example1.h"

using namespace hytap;

int main(int argc, char** argv) {
  // Pass --small to cap the sweep (CI-friendly).
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  bench::PrintHeader("Table II: solver runtime, integer vs explicit");
  std::printf("(model = shared cost-model build; solver columns exclude it)\n");
  std::printf("%8s %8s | %10s %12s %12s %12s | %12s\n", "columns", "queries",
              "model [s]", "simplex [s]", "integer [s]", "explicit [s]",
              "int/explicit");

  struct Config {
    size_t n, q;
  };
  std::vector<Config> configs = {{100, 1000},    {500, 5000},
                                 {1000, 10000},  {5000, 50000},
                                 {10000, 100000}, {20000, 200000},
                                 {50000, 500000}};
  if (small) configs.resize(4);
  const size_t simplex_limit = small ? 500 : 1000;

  for (const Config& config : configs) {
    Workload workload =
        GenerateScalabilityWorkload(config.n, config.q, /*seed=*/7);
    auto problem = SelectionProblem::FromRelativeBudget(
        workload, ScanCostParams{1.0, 100.0}, 0.3);
    // General-solver reference: the penalty LP (5) via the dense simplex,
    // with alpha mid-frontier. Only run where the tableau stays tractable.
    double simplex_seconds = -1.0;
    if (config.n <= simplex_limit) {
      bench::Stopwatch sw;
      (void)SelectContinuousSimplex(problem, /*alpha=*/50.0);
      simplex_seconds = sw.Seconds();
    }
    SelectionResult integer = SelectIntegerOptimal(problem);
    SelectionResult explicit_sol = SelectExplicit(problem);
    char simplex_text[32];
    if (simplex_seconds >= 0) {
      std::snprintf(simplex_text, sizeof simplex_text, "%12.3f",
                    simplex_seconds);
    } else {
      std::snprintf(simplex_text, sizeof simplex_text, "%12s", "(skipped)");
    }
    const double integer_solver =
        std::max(1e-9, integer.solve_seconds - integer.model_seconds);
    const double explicit_solver = std::max(
        1e-9, explicit_sol.solve_seconds - explicit_sol.model_seconds);
    std::printf("%8zu %8zu | %10.4f %s %12.5f %12.6f | %11.1fx%s\n",
                config.n, config.q, integer.model_seconds, simplex_text,
                integer_solver, explicit_solver,
                integer_solver / explicit_solver,
                integer.optimal ? "" : "  (node budget hit)");
    if (integer.optimal &&
        explicit_sol.scan_cost > 1.02 * integer.scan_cost) {
      std::printf("  WARNING: explicit solution %.3fx off optimal\n",
                  explicit_sol.scan_cost / integer.scan_cost);
    }
  }
  std::printf("\n-> the explicit solution stays in the millisecond range at "
              "any size; general LP solving explodes with N (the paper's "
              "MOSEK column), and even the specialized exact B&B trails the "
              "explicit computation (paper Table II shape).\n");
  bench::MaybeWriteMetricsSnapshot("table2_scalability");
  return 0;
}

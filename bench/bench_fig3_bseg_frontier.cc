// Reproduces Figure 3: "Comparison of optimal integer and continuous
// solutions for BSEG table: different combinations of relative performance
// and data loaded in DRAM (cf. efficient frontier)."
//
// Expected shape (paper §III-B):
//  - ~78% of the data is evicted for free (never-filtered attributes);
//  - relative performance stays within 25% of optimum up to ~95% eviction;
//  - a sharp drop beyond ~95% when the dominant BELNR column no longer fits;
//  - continuous (penalty) solutions coincide with integer solutions on the
//    frontier.

#include <cstdio>

#include "bench/bench_util.h"
#include "selection/cost_model.h"
#include "selection/selectors.h"
#include "workload/enterprise.h"

using namespace hytap;

int main() {
  Workload workload = GenerateEnterpriseWorkload(BsegProfile(), /*seed=*/42);
  const ScanCostParams params{1.0, 100.0};
  CostModel model(workload, params);

  bench::PrintHeader("Figure 3: BSEG Pareto frontier (integer vs continuous)");
  std::printf("%8s %14s %14s %14s %12s\n", "w", "evicted [%]",
              "int rel.perf", "cont rel.perf", "identical");

  const double total = workload.TotalBytes();
  size_t frontier_matches = 0, points = 0;
  for (double w = 1.0; w >= 0.005; w *= 0.82) {
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, w);
    SelectionResult integer = SelectIntegerOptimal(problem);
    // Continuous: the largest Pareto point (strict penalty-sweep prefix)
    // fitting the budget, per Theorem 1 / Remark 1.
    SelectionResult continuous = SelectExplicit(problem, /*filling=*/false);
    // Theorem 1 check: at the continuous solution's own memory usage
    // A := M(x(alpha)), the integer optimum achieves the same cost.
    SelectionProblem at_own_budget = problem;
    at_own_budget.budget_bytes = continuous.dram_bytes;
    SelectionResult integer_at_own = SelectIntegerOptimal(at_own_budget);
    const bool on_frontier =
        integer_at_own.scan_cost >= continuous.scan_cost * (1 - 1e-9);
    ++points;
    frontier_matches += on_frontier ? 1 : 0;
    std::printf("%8.3f %14.1f %14.3f %14.3f %12s\n", w,
                100.0 * (1.0 - integer.dram_bytes / total),
                model.RelativePerformance(integer.in_dram),
                model.RelativePerformance(continuous.in_dram),
                on_frontier ? "yes" : "dominated");
  }

  // Headline numbers.
  auto free_problem =
      SelectionProblem::FromRelativeBudget(workload, params, 1.0);
  SelectionResult free_eviction = SelectExplicit(free_problem);
  std::printf("\ninitial eviction rate (unused attributes only): %.1f%%"
              " at relative performance %.3f\n",
              100.0 * (1.0 - free_eviction.dram_bytes / total),
              model.RelativePerformance(free_eviction.in_dram));
  auto at95 = SelectExplicit(
      SelectionProblem::FromRelativeBudget(workload, params, 0.05));
  std::printf("at 95%% eviction: relative performance %.3f "
              "(paper: sequential accesses slowed by < 25%%)\n",
              model.RelativePerformance(at95.in_dram));
  auto at97 = SelectExplicit(
      SelectionProblem::FromRelativeBudget(workload, params, 0.03));
  std::printf("beyond the BELNR cliff (97%% eviction): %.3f "
              "(paper: sudden drop once BELNR is evicted)\n",
              model.RelativePerformance(at97.in_dram));
  std::printf("continuous solutions on the integer frontier: %zu / %zu "
              "budget points\n",
              frontier_matches, points);
  bench::MaybeWriteMetricsSnapshot("fig3_bseg_frontier");
  return 0;
}

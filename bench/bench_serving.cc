// bench_serving: the high-concurrency serving front end under mixed HTAP
// load (DESIGN.md §15).
//
// Usage: bench_serving [--small]
//
// Open-loop driver over mixed traffic — TPC-C delivery probes (OLTP class)
// against an orderline table and BSEG aggregate scans (OLAP class) against
// an enterprise table — with four self-gating sections:
//   1. Latency under load — Poisson arrivals at ~75 % utilization, four
//      sessions per table; reports per-class throughput and p50/p99/p999
//      end-to-end latency (queueing + execution).
//   2. Inter-query parallelism — a saturated burst executed with four
//      concurrent sessions vs a 1-session submit-and-await serial baseline;
//      gate: speedup >= 2x (enforced on hosts with >= 4 cores, report-only
//      on smaller hosts — the sessions are real OS threads).
//   3. Admission control — a flood against a tiny bounded queue with
//      expired deadlines and explicit cancels mixed in; gate: every
//      submission is accounted for exactly once (admitted == completed +
//      shed + cancelled, rejected + admitted == submitted) and the manager
//      drains to zero queued / zero in-flight — no admission-queue leaks.
//   4. Serial-replay equivalence — fault injection armed, interleaved OLTP
//      writes; gate: per-ticket results of the concurrent run (1/2/4
//      session workers) are bit-identical to a serial submit-and-await
//      replay, including simulated IO and the injected fault schedule.
//
// Writes BENCH_serving.json and a Prometheus snapshot of the
// hytap_session_* families (serving_metrics.txt).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/tiered_table.h"
#include "serving/session_manager.h"
#include "workload/enterprise.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

struct Config {
  int ol_warehouses = 2;
  int ol_districts = 2;
  int ol_orders = 40;
  size_t bseg_rows = 6000;
  size_t bseg_cols = 16;
  size_t latency_queries = 400;
  size_t burst_queries = 160;
  size_t flood_queries = 200;
  size_t equivalence_queries = 24;
  size_t max_sessions = 4;
  uint64_t seed = 42;
};

Config SmallConfig() {
  Config c;
  c.ol_orders = 20;
  c.bseg_rows = 3000;
  c.latency_queries = 160;
  c.burst_queries = 96;
  c.flood_queries = 120;
  c.equivalence_queries = 16;
  return c;
}

std::unique_ptr<TieredTable> MakeOrderlineTable(const Config& config,
                                                bool evict) {
  OrderlineParams params;
  params.warehouses = config.ol_warehouses;
  params.districts_per_warehouse = config.ol_districts;
  params.orders_per_district = config.ol_orders;
  TieredTableOptions options;
  options.device = DeviceKind::kXpoint;
  options.timing_seed = config.seed;
  auto table = std::make_unique<TieredTable>("orderline", OrderlineSchema(),
                                             options);
  table->Load(GenerateOrderlineRows(params));
  if (evict) {
    std::vector<bool> placement(10, true);
    for (ColumnId c : {kOlDeliveryD, kOlQuantity, kOlAmount, kOlDistInfo}) {
      placement[c] = false;
    }
    if (!table->ApplyPlacement(placement).ok()) std::abort();
  }
  return table;
}

std::unique_ptr<TieredTable> MakeBsegTable(const Config& config, bool evict) {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = config.bseg_cols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = config.seed;
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, config.bseg_rows, config.seed));
  if (evict) {
    std::vector<bool> placement(config.bseg_cols, true);
    for (size_t c = config.bseg_cols / 2; c < config.bseg_cols; ++c) {
      placement[c] = false;
    }
    if (!table->ApplyPlacement(placement).ok()) std::abort();
  }
  return table;
}

Query OltpQuery(const Config& config, Rng& rng) {
  return DeliveryQuery(
      1 + int32_t(rng.NextBounded(uint64_t(config.ol_warehouses))),
      1 + int32_t(rng.NextBounded(uint64_t(config.ol_districts))),
      1 + int32_t(rng.NextBounded(uint64_t(config.ol_orders))));
}

Query OlapQuery(const Config& config, Rng& rng) {
  Query q;
  const ColumnId filter = ColumnId(rng.NextBounded(config.bseg_cols));
  q.predicates.push_back(Predicate::Between(filter, Value(int32_t{0}),
                                            Value(int32_t{60})));
  const ColumnId agg =
      ColumnId((filter + 1 + rng.NextBounded(config.bseg_cols - 1)) %
               config.bseg_cols);
  q.aggregates.push_back(Aggregate::Sum(agg));
  q.aggregates.push_back(Aggregate::Count());
  return q;
}

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

double PercentileMs(std::vector<uint64_t>& ns, double q) {
  if (ns.empty()) return 0.0;
  std::sort(ns.begin(), ns.end());
  const size_t idx =
      std::min(ns.size() - 1, size_t(q * double(ns.size())));
  return double(ns[idx]) / 1e6;
}

/// Serializes every externally observable part of a QueryResult, including
/// the injected-fault counters — the equivalence gate compares these
/// strings per ticket.
std::string Fingerprint(const QueryResult& r) {
  std::ostringstream out;
  out << r.status.ToString() << "|p:";
  for (RowId p : r.positions) out << p << ",";
  out << "|r:";
  for (const Row& row : r.rows) {
    for (const Value& v : row) out << v.ToString() << ",";
    out << ";";
  }
  out << "|a:";
  for (const Value& v : r.aggregate_values) out << v.ToString() << ",";
  out << "|io:" << r.io.device_ns << "/" << r.io.dram_ns << "/"
      << r.io.page_reads << "/" << r.io.cache_hits << "/" << r.io.retries
      << "/" << r.io.checksum_failures << "/" << r.io.quarantined_pages;
  return out.str();
}

// --- Section 1: latency under open-loop Poisson load ---------------------

struct ClassStats {
  size_t completed = 0;
  double throughput_qps = 0;
  double p50_ms = 0, p99_ms = 0, p999_ms = 0;
};

struct LatencyResult {
  ClassStats oltp;
  ClassStats olap;
  double wall_s = 0;
};

LatencyResult RunLatencySection(const Config& config) {
  auto orderline = MakeOrderlineTable(config, /*evict=*/true);
  auto bseg = MakeBsegTable(config, /*evict=*/true);
  SessionOptions so;
  so.max_sessions = config.max_sessions;
  so.queue_capacity = config.latency_queries;  // no rejections here
  SessionManager& oltp_mgr = orderline->EnableServing(so);
  SessionManager& olap_mgr = bseg->EnableServing(so);

  // Build the arrival schedule: 70 % OLTP, Poisson arrivals paced at
  // roughly 75 % utilization of the measured serial service rate.
  Rng rng(config.seed);
  struct Arrival {
    bool oltp;
    Query query;
    uint64_t at_ns;
  };
  // Calibrate mean service time with a few unrecorded serial queries.
  uint64_t calib_ns = 0;
  {
    Rng crng(config.seed + 1);
    const auto start = std::chrono::steady_clock::now();
    constexpr size_t kCalib = 16;
    for (size_t i = 0; i < kCalib; ++i) {
      if (i % 3 != 0) {
        Transaction txn = orderline->Begin();
        orderline->ExecuteUnrecorded(txn, OltpQuery(config, crng));
      } else {
        Transaction txn = bseg->Begin();
        bseg->ExecuteUnrecorded(txn, OlapQuery(config, crng));
      }
    }
    calib_ns = uint64_t(std::chrono::duration<double, std::nano>(
                            std::chrono::steady_clock::now() - start)
                            .count()) /
               kCalib;
  }
  const double mean_gap_ns =
      double(calib_ns) / (double(config.max_sessions) * 0.75);
  std::vector<Arrival> schedule;
  schedule.reserve(config.latency_queries);
  uint64_t at = 0;
  for (size_t i = 0; i < config.latency_queries; ++i) {
    const bool oltp = rng.NextDouble() < 0.7;
    Query q = oltp ? OltpQuery(config, rng) : OlapQuery(config, rng);
    at += uint64_t(-std::log(1.0 - rng.NextDouble()) * mean_gap_ns);
    schedule.push_back(Arrival{oltp, std::move(q), at});
  }

  // Open-loop submit; per-class awaiter pools timestamp completions. Within
  // a class (no deadlines) dispatch follows ticket order, so a pool of
  // max_sessions awaiters always has a thread parked on every executing
  // query and completion timestamps are exact.
  struct Pending {
    SessionHandle handle;
    uint64_t arrival_ns;
  };
  std::vector<Pending> pending[2];
  for (auto& p : pending) p.reserve(schedule.size());
  std::vector<uint64_t> latencies[2];
  for (auto& l : latencies) l.resize(schedule.size(), 0);
  std::atomic<size_t> next_await[2] = {{0}, {0}};
  std::atomic<size_t> completed[2] = {{0}, {0}};
  std::atomic<bool> submitting{true};

  const uint64_t t0 = SessionManager::NowNs();
  std::vector<std::thread> awaiters;
  for (int cls = 0; cls < 2; ++cls) {
    for (size_t w = 0; w < config.max_sessions; ++w) {
      awaiters.emplace_back([&, cls] {
        for (;;) {
          const size_t i = next_await[cls].fetch_add(1);
          // Wait for the submitter to publish entry i (or finish).
          while (i >= pending[cls].size() &&
                 submitting.load(std::memory_order_acquire)) {
            std::this_thread::yield();
          }
          if (i >= pending[cls].size()) return;
          QueryResult r = pending[cls][i].handle->Await();
          const uint64_t done = SessionManager::NowNs();
          if (r.status.ok()) {
            latencies[cls][completed[cls].fetch_add(1)] =
                done - pending[cls][i].arrival_ns;
          }
        }
      });
    }
  }
  for (const Arrival& a : schedule) {
    const uint64_t now = SessionManager::NowNs();
    if (t0 + a.at_ns > now) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(t0 + a.at_ns - now));
    }
    SubmitOptions opts;
    opts.query_class = a.oltp ? QueryClass::kOltp : QueryClass::kOlap;
    auto s = a.oltp ? oltp_mgr.Submit(a.query, opts)
                    : olap_mgr.Submit(a.query, opts);
    if (!s.ok()) continue;  // capacity == n, should not happen
    const int cls = a.oltp ? 0 : 1;
    pending[cls].push_back(Pending{*s, SessionManager::NowNs()});
  }
  submitting.store(false, std::memory_order_release);
  for (std::thread& t : awaiters) t.join();
  oltp_mgr.Drain();
  olap_mgr.Drain();
  const double wall_s = double(SessionManager::NowNs() - t0) / 1e9;

  LatencyResult out;
  out.wall_s = wall_s;
  for (int cls = 0; cls < 2; ++cls) {
    ClassStats& st = cls == 0 ? out.oltp : out.olap;
    st.completed = completed[cls].load();
    latencies[cls].resize(st.completed);
    st.throughput_qps = wall_s > 0 ? double(st.completed) / wall_s : 0;
    st.p50_ms = PercentileMs(latencies[cls], 0.50);
    st.p99_ms = PercentileMs(latencies[cls], 0.99);
    st.p999_ms = PercentileMs(latencies[cls], 0.999);
  }
  return out;
}

// --- Section 2: inter-query parallelism (burst speedup) ------------------

struct BurstResult {
  double serial_s = 0;
  double concurrent_s = 0;
  double speedup = 0;
};

BurstResult RunBurstSection(const Config& config) {
  // DRAM-resident placements: the burst measures CPU parallelism across
  // sessions (each session is an OS thread), not secondary-store bandwidth.
  auto run = [&](size_t max_sessions, bool serial) {
    auto orderline = MakeOrderlineTable(config, /*evict=*/false);
    auto bseg = MakeBsegTable(config, /*evict=*/false);
    SessionOptions so;
    so.max_sessions = max_sessions;
    so.queue_capacity = config.burst_queries;
    SessionManager& oltp_mgr = orderline->EnableServing(so);
    SessionManager& olap_mgr = bseg->EnableServing(so);
    Rng rng(config.seed + 2);
    std::vector<std::pair<bool, Query>> burst;
    for (size_t i = 0; i < config.burst_queries; ++i) {
      const bool oltp = i % 2 == 0;
      burst.emplace_back(oltp, oltp ? OltpQuery(config, rng)
                                    : OlapQuery(config, rng));
    }
    bench::Stopwatch watch;
    std::vector<SessionHandle> handles;
    for (auto& [oltp, q] : burst) {
      SubmitOptions opts;
      opts.query_class = oltp ? QueryClass::kOltp : QueryClass::kOlap;
      auto s = oltp ? oltp_mgr.Submit(q, opts) : olap_mgr.Submit(q, opts);
      if (!s.ok()) std::abort();
      if (serial) {
        (*s)->Await();
      } else {
        handles.push_back(*s);
      }
    }
    for (const SessionHandle& s : handles) s->Await();
    oltp_mgr.Drain();
    olap_mgr.Drain();
    return watch.Seconds();
  };

  BurstResult out;
  out.serial_s = run(1, /*serial=*/true);
  out.concurrent_s = run(config.max_sessions, /*serial=*/false);
  out.speedup = out.concurrent_s > 0 ? out.serial_s / out.concurrent_s : 0;
  return out;
}

// --- Section 3: admission control, shedding, zero leaks ------------------

struct AdmissionResult {
  size_t submitted = 0;
  size_t admitted = 0;
  size_t rejected = 0;
  size_t completed = 0;
  size_t shed = 0;
  size_t cancelled = 0;
  size_t queued_after = 0;
  size_t in_flight_after = 0;
  bool balanced = false;
};

AdmissionResult RunAdmissionSection(const Config& config) {
  auto table = MakeOrderlineTable(config, /*evict=*/true);
  SessionOptions so;
  so.max_sessions = 2;
  so.queue_capacity = 8;
  SessionManager& sm = table->EnableServing(so);

  Rng rng(config.seed + 3);
  AdmissionResult out;
  std::vector<SessionHandle> handles;
  for (size_t i = 0; i < config.flood_queries; ++i) {
    SubmitOptions opts;
    opts.query_class = QueryClass::kOltp;
    if (i % 5 == 0) {
      opts.deadline_ns = SessionManager::NowNs() - 1;  // will be shed
    }
    ++out.submitted;
    auto s = sm.Submit(OltpQuery(config, rng), opts);
    if (!s.ok()) {
      ++out.rejected;
      continue;
    }
    ++out.admitted;
    if (i % 7 == 0) (*s)->Cancel();
    handles.push_back(*s);
  }
  for (const SessionHandle& s : handles) {
    const Status& st = s->Await().status;
    if (st.ok()) {
      ++out.completed;
    } else if (st.code() == StatusCode::kDeadlineExceeded) {
      ++out.shed;
    } else if (st.code() == StatusCode::kCancelled) {
      ++out.cancelled;
    }
  }
  sm.Drain();
  out.queued_after = sm.queued();
  out.in_flight_after = sm.in_flight();
  out.balanced =
      out.admitted == out.completed + out.shed + out.cancelled &&
      out.submitted == out.admitted + out.rejected &&
      sm.tickets_issued() == out.admitted && out.queued_after == 0 &&
      out.in_flight_after == 0;
  return out;
}

// --- Section 4: serial-replay equivalence under faults -------------------

bool RunEquivalenceSection(const Config& config, std::string* detail) {
  FaultConfig faults;
  faults.seed = config.seed + 4;
  faults.read_error_rate = 0.02;
  faults.read_corruption_rate = 0.01;
  faults.latency_spike_rate = 0.01;

  auto run = [&](size_t max_sessions, bool serial) {
    auto table = MakeOrderlineTable(config, /*evict=*/true);
    table->store().ConfigureFaults(faults);
    SessionOptions so;
    so.max_sessions = max_sessions;
    so.queue_capacity = config.equivalence_queries;
    SessionManager& sm = table->EnableServing(so);
    Rng rng(config.seed + 5);
    std::vector<SessionHandle> handles;
    std::vector<std::string> prints;
    for (size_t i = 0; i < config.equivalence_queries; ++i) {
      if (i % 8 == 3) {
        Transaction w = table->Begin();
        Row row{Value(int32_t(2000 + i)), Value(int32_t{1}),
                Value(int32_t{1}),        Value(int32_t{1}),
                Value(int32_t{1}),        Value(int32_t{1}),
                Value(int64_t{0}),        Value(int32_t{5}),
                Value(1.0),               Value(std::string("x"))};
        if (!table->Insert(w, row).ok()) std::abort();
        table->Commit(&w);
      }
      Query q = i % 2 == 0 ? OltpQuery(config, rng)
                           : ChQuery19(1, 1, 500, 1, 5);
      SubmitOptions opts;
      opts.query_class =
          i % 2 == 0 ? QueryClass::kOltp : QueryClass::kOlap;
      auto s = sm.Submit(q, opts);
      if (!s.ok()) std::abort();
      if (serial) {
        prints.push_back(Fingerprint((*s)->Await()));
      } else {
        handles.push_back(*s);
      }
    }
    for (const SessionHandle& s : handles) {
      prints.push_back(Fingerprint(s->Await()));
    }
    sm.Drain();
    return prints;
  };

  bool identical = true;
  std::string note;
  for (size_t m : {size_t(1), size_t(2), size_t(4)}) {
    const std::vector<std::string> serial = run(m, /*serial=*/true);
    const std::vector<std::string> conc = run(m, /*serial=*/false);
    size_t mismatches = 0;
    for (size_t i = 0; i < serial.size(); ++i) {
      if (serial[i] != conc[i]) ++mismatches;
    }
    if (mismatches != 0) identical = false;
    note += "sessions=" + std::to_string(m) + ":" +
            (mismatches == 0 ? "identical" : "DIVERGED") + " ";
  }
  *detail = note;
  return identical;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
      config = SmallConfig();
    }
  }
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("bench_serving%s: %u hardware threads, %zu sessions\n",
              small ? " --small" : "", cores, config.max_sessions);

  bench::PrintHeader("latency under open-loop Poisson load");
  const LatencyResult lat = RunLatencySection(config);
  std::printf("wall %.2fs\n", lat.wall_s);
  std::printf(
      "  oltp: %zu done, %.0f q/s, p50 %.3fms p99 %.3fms p999 %.3fms\n",
      lat.oltp.completed, lat.oltp.throughput_qps, lat.oltp.p50_ms,
      lat.oltp.p99_ms, lat.oltp.p999_ms);
  std::printf(
      "  olap: %zu done, %.0f q/s, p50 %.3fms p99 %.3fms p999 %.3fms\n",
      lat.olap.completed, lat.olap.throughput_qps, lat.olap.p50_ms,
      lat.olap.p99_ms, lat.olap.p999_ms);

  bench::PrintHeader("inter-query parallelism (saturated burst)");
  const BurstResult burst = RunBurstSection(config);
  const bool enforce_speedup = cores >= 4;
  std::printf("serial %.3fs, %zu sessions %.3fs, speedup %.2fx%s\n",
              burst.serial_s, config.max_sessions, burst.concurrent_s,
              burst.speedup,
              enforce_speedup ? "" : " (report-only: <4 cores)");

  bench::PrintHeader("admission control and shedding");
  const AdmissionResult adm = RunAdmissionSection(config);
  std::printf(
      "submitted %zu = admitted %zu + rejected %zu; admitted = "
      "completed %zu + shed %zu + cancelled %zu; queued %zu, in-flight "
      "%zu after drain\n",
      adm.submitted, adm.admitted, adm.rejected, adm.completed, adm.shed,
      adm.cancelled, adm.queued_after, adm.in_flight_after);

  bench::PrintHeader("serial-replay equivalence (faults armed)");
  std::string equivalence_detail;
  const bool equivalent = RunEquivalenceSection(config, &equivalence_detail);
  std::printf("%s\n", equivalence_detail.c_str());

  std::string json = "{";
  json += "\"small\":" + std::string(small ? "true" : "false");
  json += ",\"hardware_threads\":" + std::to_string(cores);
  json += ",\"oltp_qps\":" + TraceFormatDouble(lat.oltp.throughput_qps);
  json += ",\"oltp_p50_ms\":" + TraceFormatDouble(lat.oltp.p50_ms);
  json += ",\"oltp_p99_ms\":" + TraceFormatDouble(lat.oltp.p99_ms);
  json += ",\"oltp_p999_ms\":" + TraceFormatDouble(lat.oltp.p999_ms);
  json += ",\"olap_qps\":" + TraceFormatDouble(lat.olap.throughput_qps);
  json += ",\"olap_p50_ms\":" + TraceFormatDouble(lat.olap.p50_ms);
  json += ",\"olap_p99_ms\":" + TraceFormatDouble(lat.olap.p99_ms);
  json += ",\"olap_p999_ms\":" + TraceFormatDouble(lat.olap.p999_ms);
  json += ",\"burst_serial_s\":" + TraceFormatDouble(burst.serial_s);
  json += ",\"burst_concurrent_s\":" + TraceFormatDouble(burst.concurrent_s);
  json += ",\"burst_speedup\":" + TraceFormatDouble(burst.speedup);
  json += ",\"speedup_enforced\":";
  json += enforce_speedup ? "true" : "false";
  json += ",\"admission_submitted\":" + std::to_string(adm.submitted);
  json += ",\"admission_admitted\":" + std::to_string(adm.admitted);
  json += ",\"admission_rejected\":" + std::to_string(adm.rejected);
  json += ",\"admission_completed\":" + std::to_string(adm.completed);
  json += ",\"admission_shed\":" + std::to_string(adm.shed);
  json += ",\"admission_cancelled\":" + std::to_string(adm.cancelled);
  json += ",\"admission_balanced\":";
  json += adm.balanced ? "true" : "false";
  json += ",\"serial_replay_identical\":";
  json += equivalent ? "true" : "false";
  json += "}";
  WriteFile("BENCH_serving.json", json + "\n");
  std::printf("\nresults written to BENCH_serving.json\n");

  const std::string prom =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  WriteFile("serving_metrics.txt", prom);
  std::printf("metrics written to serving_metrics.txt\n");

  // Self-gating acceptance (the PR's bench criteria).
  bool ok = true;
  if (lat.oltp.completed == 0 || lat.olap.completed == 0) {
    std::fprintf(stderr, "FAIL: a traffic class completed no queries\n");
    ok = false;
  }
  if (enforce_speedup && burst.speedup < 2.0) {
    std::fprintf(stderr, "FAIL: burst speedup %.2fx < 2x\n", burst.speedup);
    ok = false;
  }
  if (!adm.balanced) {
    std::fprintf(stderr, "FAIL: admission counters leaked a session\n");
    ok = false;
  }
  if (adm.rejected == 0 || adm.shed == 0 || adm.cancelled == 0) {
    std::fprintf(stderr,
                 "FAIL: flood exercised no rejection/shed/cancel path\n");
    ok = false;
  }
  if (!equivalent) {
    std::fprintf(stderr, "FAIL: concurrent run diverged from serial "
                         "replay (%s)\n",
                 equivalence_detail.c_str());
    ok = false;
  }
  bench::MaybeWriteMetricsSnapshot("serving");
  std::printf("serving self-check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

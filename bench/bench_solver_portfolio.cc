// Anytime solver portfolio (DESIGN.md §13): gap-vs-time curves of the raced
// solvers, plus a Table-2-style scaling sweep of the O(N log N) heuristic
// paths up to N = 10^6 (column, tenant) items.
//
// Results are printed and written to BENCH_solver_portfolio.json. The bench
// self-gates (exit 1) on the PR's acceptance criteria so CI can run it as a
// smoke test:
//   - the merged incumbent-gap timeline is monotonically non-increasing;
//   - the portfolio incumbent ends within 1% of the exact optimum on the
//     Example-1 and BSEG-sized instances;
//   - greedy/explicit selection at N = 10^5 completes under a fixed
//     wall-clock bound (and, in the full sweep, N = 10^6 in single-digit
//     seconds).

#include <cinttypes>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "selection/selectors.h"
#include "solver/portfolio.h"
#include "workload/example1.h"

using namespace hytap;

namespace {

int failures = 0;

void Gate(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "GATE FAILED: %s\n", what);
    ++failures;
  }
}

struct CurveRow {
  std::string instance;
  size_t n = 0;
  PortfolioResult result;
  double exact_objective = 0.0;
};

struct ScaleRow {
  size_t n = 0;
  size_t queries = 0;
  double model_seconds = 0.0;
  double explicit_seconds = 0.0;  // solver time, model build excluded
  double greedy_seconds = 0.0;
  double portfolio_seconds = 0.0;
  double portfolio_gap = 0.0;
  std::string winner;
  uint64_t nodes = 0;
};

CurveRow RunCurve(const std::string& instance, const Workload& workload,
                  double budget_share) {
  SelectionProblem problem;
  problem.workload = &workload;
  problem.budget_bytes = budget_share * workload.TotalBytes();

  PortfolioOptions options;
  options.budget_ms = 0.0;  // run to completion: the curve ends at optimal
  SolverPortfolio portfolio(options);

  CurveRow row;
  row.instance = instance;
  row.n = workload.column_count();
  row.result = portfolio.Solve(problem);
  const SelectionResult exact = SelectIntegerOptimal(problem);
  row.exact_objective = exact.objective;

  double last_gap = 1e300;
  bool monotone = true;
  for (const IncumbentEvent& event : row.result.timeline) {
    if (event.gap > last_gap + 1e-15) monotone = false;
    last_gap = event.gap;
  }
  Gate(monotone, "incumbent gap timeline must be monotone non-increasing");
  Gate(exact.optimal, "exact reference solve must complete");
  Gate(row.result.selection.objective <= exact.objective * 1.01 + 1e-9,
       "portfolio incumbent must end within 1% of the exact optimum");

  std::printf("%-10s N=%-6zu winner=%-8s wall=%.3fs updates=%" PRIu64
              " final_gap=%.5f (vs exact: %+.3e)\n",
              instance.c_str(), row.n, row.result.winner.c_str(),
              row.result.wall_seconds, row.result.incumbent_updates,
              row.result.gap,
              row.result.selection.objective - exact.objective);
  // Console: first and last few incumbents (the JSON keeps every point).
  const size_t total = row.result.timeline.size();
  for (size_t i = 0; i < total; ++i) {
    if (total > 16 && i == 8) {
      std::printf("    ... %zu more incumbents ...\n", total - 16);
      i = total - 8;
    }
    const IncumbentEvent& event = row.result.timeline[i];
    std::printf("    t=%9.6fs  %-8s objective=%.6e gap=%.5f\n",
                event.elapsed_seconds, event.solver.c_str(), event.objective,
                event.gap);
  }
  return row;
}

ScaleRow RunScale(size_t tenants, size_t columns_per_tenant,
                  size_t queries_per_tenant, double portfolio_budget_ms) {
  const Workload workload = GenerateMultiTenantWorkload(
      tenants, columns_per_tenant, queries_per_tenant, /*seed=*/13);
  SelectionProblem problem;
  problem.workload = &workload;
  problem.budget_bytes = 0.25 * workload.TotalBytes();

  ScaleRow row;
  row.n = workload.column_count();
  row.queries = workload.queries.size();

  const SelectionResult explicit_sol = SelectExplicit(problem);
  row.model_seconds = explicit_sol.model_seconds;
  row.explicit_seconds =
      explicit_sol.solve_seconds - explicit_sol.model_seconds;
  const SelectionResult greedy = SelectGreedyMarginal(problem);
  row.greedy_seconds = greedy.solve_seconds - greedy.model_seconds;

  PortfolioOptions options;
  options.budget_ms = portfolio_budget_ms;
  SolverPortfolio portfolio(options);
  const PortfolioResult result = portfolio.Solve(problem);
  row.portfolio_seconds = result.wall_seconds;
  row.portfolio_gap = result.gap;
  row.winner = result.winner;
  row.nodes = result.nodes;

  std::printf("%9zu %9zu | %9.3f %12.4f %12.4f | %10.3f %-8s gap=%.5f "
              "nodes=%" PRIu64 "\n",
              row.n, row.queries, row.model_seconds, row.explicit_seconds,
              row.greedy_seconds, row.portfolio_seconds, row.winner.c_str(),
              row.portfolio_gap, row.nodes);
  return row;
}

void AppendCurveJson(const CurveRow& row, std::string* out) {
  char buf[256];
  *out += "{\"instance\":\"" + row.instance + "\",";
  std::snprintf(buf, sizeof buf,
                "\"n\":%zu,\"winner\":\"%s\",\"wall_seconds\":%.6f,"
                "\"objective\":%.9e,\"exact_objective\":%.9e,"
                "\"lp_bound\":%.9e,\"gap\":%.9f,\"proved_optimal\":%s,"
                "\"points\":[",
                row.n, row.result.winner.c_str(), row.result.wall_seconds,
                row.result.selection.objective, row.exact_objective,
                row.result.lp_bound, row.result.gap,
                row.result.proved_optimal ? "true" : "false");
  *out += buf;
  for (size_t i = 0; i < row.result.timeline.size(); ++i) {
    const IncumbentEvent& event = row.result.timeline[i];
    std::snprintf(buf, sizeof buf,
                  "%s{\"t\":%.6f,\"solver\":\"%s\",\"objective\":%.9e,"
                  "\"gap\":%.9f}",
                  i == 0 ? "" : ",", event.elapsed_seconds,
                  event.solver.c_str(), event.objective, event.gap);
    *out += buf;
  }
  *out += "]}";
}

void AppendScaleJson(const ScaleRow& row, std::string* out) {
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "{\"n\":%zu,\"queries\":%zu,\"model_seconds\":%.6f,"
                "\"explicit_seconds\":%.6f,\"greedy_seconds\":%.6f,"
                "\"portfolio_seconds\":%.6f,\"portfolio_gap\":%.9f,"
                "\"winner\":\"%s\",\"nodes\":%" PRIu64 "}",
                row.n, row.queries, row.model_seconds, row.explicit_seconds,
                row.greedy_seconds, row.portfolio_seconds, row.portfolio_gap,
                row.winner.c_str(), row.nodes);
  *out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";

  bench::PrintHeader("anytime solver portfolio: gap vs time");
  std::vector<CurveRow> curves;
  {
    // Paper Example-1 size (N = 50) and BSEG size (N = 344 attributes).
    Example1Params example1;
    example1.seed = 7;
    curves.push_back(
        RunCurve("example1", GenerateExample1(example1), /*share=*/0.3));
    curves.push_back(RunCurve(
        "bseg", GenerateScalabilityWorkload(344, 3440, /*seed=*/7), 0.3));
  }

  bench::PrintHeader(
      "selection at scale: explicit/greedy O(N log N) vs portfolio deadline");
  std::printf("%9s %9s | %9s %12s %12s | %10s\n", "items", "queries",
              "model [s]", "explicit [s]", "greedy [s]", "portfolio");
  std::vector<ScaleRow> scaling;
  struct Config {
    size_t tenants, cols, queries;
  };
  // N = tenants * cols; queries_per_tenant keeps Q ~ N.
  std::vector<Config> configs = small
                                    ? std::vector<Config>{{10, 100, 100},
                                                          {100, 100, 100},
                                                          {1000, 100, 100}}
                                    : std::vector<Config>{{100, 100, 100},
                                                          {1000, 100, 100},
                                                          {10000, 100, 100}};
  const double portfolio_budget_ms = small ? 500.0 : 2000.0;
  for (const Config& config : configs) {
    scaling.push_back(RunScale(config.tenants, config.cols, config.queries,
                               portfolio_budget_ms));
  }

  // CI gates on the heuristic scaling path. Bounds are loose (shared CI
  // machines) — the point is catching an accidental return to O(N^2), which
  // would overshoot them by orders of magnitude.
  for (const ScaleRow& row : scaling) {
    if (row.n == 100000) {
      Gate(row.greedy_seconds < 10.0,
           "greedy at N=10^5 must finish under the fixed wall-clock bound");
      Gate(row.explicit_seconds < 10.0,
           "explicit at N=10^5 must finish under the fixed wall-clock bound");
    }
    if (row.n == 1000000) {
      Gate(row.explicit_seconds < 10.0,
           "explicit at N=10^6 must complete in single-digit seconds");
      Gate(row.greedy_seconds < 10.0,
           "greedy at N=10^6 must complete in single-digit seconds");
    }
  }

  std::string json = "{\"curves\":[";
  for (size_t i = 0; i < curves.size(); ++i) {
    if (i > 0) json += ",";
    AppendCurveJson(curves[i], &json);
  }
  json += "],\"scaling\":[";
  for (size_t i = 0; i < scaling.size(); ++i) {
    if (i > 0) json += ",";
    AppendScaleJson(scaling[i], &json);
  }
  json += "]}\n";
  FILE* f = std::fopen("BENCH_solver_portfolio.json", "w");
  if (f != nullptr) {
    std::fputs(json.c_str(), f);
    std::fclose(f);
    std::printf("\nresults written to BENCH_solver_portfolio.json\n");
  }

  std::printf("-> the portfolio delivers the explicit answer instantly, "
              "tightens it with B&B incumbents as the budget allows, and at "
              "N=10^6 the O(N log N) heuristic paths keep selection in "
              "seconds (paper Table II shape under a deadline).\n");
  bench::MaybeWriteMetricsSnapshot("solver_portfolio");
  if (failures > 0) {
    std::fprintf(stderr, "%d gate(s) failed\n", failures);
    return 1;
  }
  return 0;
}

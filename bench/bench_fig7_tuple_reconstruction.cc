// Reproduces Figure 7: "Latencies for full-width tuple reconstructions on
// synthetic data set (uniformly distributed accesses)" — mean and 99th
// percentile, varying the number of attributes stored in the SSCG from 20 to
// 200 (of a 200-attribute table), across devices, with the page cache set to
// 2% of the evicted data and a fully DRAM-resident baseline.
//
// Expected shape: NAND devices sit near their ~100 us service time with
// heavy p99 tails; 3D XPoint starts near 10-20 us and beats the DRAM
// baseline once >= 50% of the attributes live in the SSCG; the DRAM
// baseline's cost is flat (two cache misses per attribute).

#include <cstdio>

#include "bench/bench_util.h"
#include "core/tiered_table.h"
#include "query/tuple_reconstructor.h"
#include "workload/enterprise.h"

using namespace hytap;

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = 200;
  const size_t rows = small ? 4000 : 20000;
  const size_t reconstructions = small ? 1000 : 5000;
  const std::vector<Row> data = GenerateEnterpriseRows(profile, rows, 7);

  bench::PrintHeader(
      "Figure 7: full-width tuple reconstruction latency (uniform)");
  std::printf("table: %zu rows x 200 int attributes; cache = 2%% of evicted "
              "data; %zu reconstructions per point\n\n",
              rows, reconstructions);

  // DRAM baseline (IMDB): flat in the SSCG-width dimension.
  {
    TieredTable table("dram", MakeEnterpriseSchema(profile),
                      TieredTableOptions{});
    table.Load(data);
    TupleReconstructor reconstructor(&table.table());
    LatencyStats stats = reconstructor.RunBatch(
        reconstructions, AccessDistribution::kUniform, 1, 13);
    std::printf("%-10s %-12s mean %8.1f us   p99 %8.1f us\n", "DRAM",
                "(any width)", stats.mean_ns / 1e3,
                double(stats.p99_ns) / 1e3);
  }

  std::printf("\n%-10s %12s %12s %12s\n", "device", "SSCG attrs",
              "mean [us]", "p99 [us]");
  for (DeviceKind device : kSecondaryDevices) {
    if (device == DeviceKind::kHdd) continue;  // paper: HDD excluded here
    for (size_t sscg_width : {20, 50, 100, 150, 200}) {
      TieredTableOptions options;
      options.device = device;
      options.cache_share = 0.02;
      options.min_frames = 4;
      TieredTable table("tiered", MakeEnterpriseSchema(profile), options);
      table.Load(data);
      std::vector<bool> placement(200, false);
      for (size_t c = sscg_width; c < 200; ++c) placement[c] = true;
      // The first `sscg_width` attributes are evicted; the rest stay MRC.
      if (!table.ApplyPlacement(placement).ok()) return 1;
      TupleReconstructor reconstructor(&table.table());
      LatencyStats stats = reconstructor.RunBatch(
          reconstructions, AccessDistribution::kUniform, 1, 13);
      std::printf("%-10s %12zu %12.1f %12.1f\n", DeviceKindName(device),
                  sscg_width, stats.mean_ns / 1e3,
                  double(stats.p99_ns) / 1e3);
    }
    std::printf("\n");
  }
  std::printf("-> on 3D XPoint, SSCG-placed tuples outperform the fully "
              "DRAM-resident dictionary-encoded baseline once >= 50%% of "
              "attributes are in the SSCG (paper Fig. 7).\n");
  bench::MaybeWriteMetricsSnapshot("fig7_tuple_reconstruction");
  return 0;
}

// Overhead of the reliability layer on the fault-free fast path: CRC32C
// page-checksum verification on vs off, with fault injection disabled (the
// production configuration). Verification is lazy — once per write, on the
// first read-back — so the steady-state cost should be near zero; the
// acceptance target is <= 3 % end-to-end query overhead. The raw ReadPage
// microbenchmark is reported for context. Results go to
// BENCH_fault_overhead.json.

#include <algorithm>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "bench/bench_util.h"
#include "common/random.h"
#include "query/executor.h"
#include "storage/table.h"
#include "tiering/buffer_manager.h"
#include "tiering/secondary_store.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

struct Sample {
  const char* workload;
  double on_seconds;   // verify_checksums = true
  double off_seconds;  // verify_checksums = false
  double overhead_pct;
};

std::vector<Sample> g_samples;

/// Interleaves checksum-on and checksum-off reps (cancelling machine drift)
/// after one untimed warmup of each, and returns the best run per
/// configuration. The warmup also absorbs the one-time first-read-back
/// verification, so both sides measure steady state.
template <typename SetVerify, typename Fn>
std::pair<double, double> MeasurePair(int reps, SetVerify&& set_verify,
                                      Fn&& fn) {
  set_verify(true);
  fn();
  set_verify(false);
  fn();
  double best_on = 1e100, best_off = 1e100;
  for (int r = 0; r < reps; ++r) {
    set_verify(true);
    bench::Stopwatch on_watch;
    fn();
    best_on = std::min(best_on, on_watch.Seconds());
    set_verify(false);
    bench::Stopwatch off_watch;
    fn();
    best_off = std::min(best_off, off_watch.Seconds());
  }
  return {best_on, best_off};
}

void Record(const char* workload, double on_seconds, double off_seconds) {
  const double pct = 100.0 * (on_seconds - off_seconds) / off_seconds;
  g_samples.push_back(Sample{workload, on_seconds, off_seconds, pct});
  std::printf("  %-14s checksums on: %9.2f ms   off: %9.2f ms   "
              "overhead: %+5.2f %%\n",
              workload, on_seconds * 1e3, off_seconds * 1e3, pct);
}

void WriteJson(const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "[\n");
  for (size_t i = 0; i < g_samples.size(); ++i) {
    const Sample& s = g_samples[i];
    std::fprintf(f,
                 "  {\"workload\": \"%s\", \"checksum_on_seconds\": %.6f, "
                 "\"checksum_off_seconds\": %.6f, \"overhead_pct\": %.3f}%s\n",
                 s.workload, s.on_seconds, s.off_seconds, s.overhead_pct,
                 i + 1 < g_samples.size() ? "," : "");
  }
  std::fprintf(f, "]\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";

  // --- Raw ReadPage loop: worst case, nothing amortizes the CRC. ---
  bench::PrintHeader("raw ReadPage (4 KB pages, fault injection disabled)");
  {
    SecondaryStore store(DeviceKind::kXpoint, 42, FaultConfig{});
    const size_t pages = 256;
    SecondaryStore::Page data;
    Rng rng(1);
    for (size_t p = 0; p < pages; ++p) {
      for (size_t i = 0; i < data.size(); ++i) {
        data[i] = uint8_t(rng.NextBounded(256));
      }
      store.WritePage(store.AllocatePage(), data);
    }
    const size_t sweeps = small ? 50 : 400;
    auto read_all = [&] {
      SecondaryStore::Page dest;
      for (size_t s = 0; s < sweeps; ++s) {
        for (PageId p = 0; p < pages; ++p) {
          if (!store.ReadPage(p, &dest, AccessPattern::kSequential).ok()) {
            std::abort();
          }
        }
      }
    };
    const auto [on, off] = MeasurePair(
        5, [&](bool v) { store.set_verify_checksums(v); }, read_all);
    Record("raw_read", on, off);
  }

  // --- End-to-end tiered query: the <= 3 % acceptance target. ---
  bench::PrintHeader("tiered query end-to-end (ORDERLINE, payload in SSCG)");
  {
    OrderlineParams params;
    params.warehouses = small ? 10 : 40;
    TransactionManager txns;
    SecondaryStore store(DeviceKind::kCssd, 42, FaultConfig{});
    BufferManager buffers(&store, 4096);
    Table table("orderline", OrderlineSchema(), &txns, &store, &buffers);
    table.BulkLoad(GenerateOrderlineRows(params));
    std::vector<bool> placement(OrderlineSchema().size(), false);
    for (ColumnId c : OrderlinePrimaryKey()) placement[c] = true;
    if (!table.SetPlacement(placement).ok()) return 1;
    std::printf("%zu rows\n", table.main_row_count());

    QueryExecutor executor(&table);
    Transaction txn = txns.Begin();
    const Query query = ChQuery19(/*warehouse=*/1, /*item_lo=*/0,
                                  /*item_hi=*/int32_t(params.items),
                                  /*quantity_lo=*/1, /*quantity_hi=*/6);
    auto run = [&] {
      buffers.Clear();  // every SSCG page read re-verifies its checksum
      QueryResult result = executor.Execute(txn, query, 1);
      if (!result.status.ok() || result.positions.empty()) std::abort();
    };
    const auto [on, off] = MeasurePair(
        7, [&](bool v) { store.set_verify_checksums(v); }, run);
    txns.Abort(&txn);
    Record("query_e2e", on, off);

    const double pct = g_samples.back().overhead_pct;
    std::printf("\ntarget: <= 3 %% end-to-end -> %s (%+.2f %%)\n",
                pct <= 3.0 ? "PASS" : "MISS", pct);
  }

  WriteJson("BENCH_fault_overhead.json");
  bench::MaybeWriteMetricsSnapshot("fault_overhead");
  return 0;
}

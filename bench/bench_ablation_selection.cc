// Ablations of the design choices called out in DESIGN.md:
//  (1) selection interaction on/off - why counting filter frequencies
//      mis-ranks columns in columnar engines (paper §I-B);
//  (2) Remark-2 filling on/off - budget utilization of the explicit order;
//  (3) reallocation cost beta sweep - movement volume vs performance
//      (paper §III-D);
//  (4) scan->probe switch threshold - query latency on tiered data
//      (paper §II-B).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/tiered_table.h"
#include "selection/selectors.h"
#include "storage/disk_column.h"
#include "workload/example1.h"
#include "workload/tpcc.h"

using namespace hytap;

namespace {

void AblateSelectionInteraction() {
  bench::PrintHeader("(1) selection interaction on/off");
  std::printf("%6s %18s %18s %12s\n", "w", "with interaction",
              "without (freq-count)", "penalty");
  Example1Params gen;
  gen.seed = 3;
  Workload workload = GenerateExample1(gen);
  const ScanCostParams params{1.0, 100.0};
  CostModel truth(workload, params, /*selection_interaction=*/true);
  for (double w : {0.2, 0.4, 0.6}) {
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, w);
    auto informed = SelectIntegerOptimal(problem);
    // "Without": rank columns by a model that ignores the discount (all
    // selectivities treated as 1), then evaluate the chosen allocation under
    // the true cost model.
    Workload no_discount = workload;
    for (double& s : no_discount.selectivities) s = 1.0;
    auto naive_problem =
        SelectionProblem::FromRelativeBudget(no_discount, params, w);
    naive_problem.budget_bytes = problem.budget_bytes;
    auto uninformed = SelectIntegerOptimal(naive_problem);
    const double informed_cost = truth.ScanCost(informed.in_dram);
    const double uninformed_cost = truth.ScanCost(uninformed.in_dram);
    std::printf("%6.1f %18.3g %18.3g %11.2fx\n", w, informed_cost,
                uninformed_cost, uninformed_cost / informed_cost);
  }
}

void AblateFilling() {
  bench::PrintHeader("(2) Remark-2 filling on/off");
  std::printf("%6s %16s %16s %16s\n", "w", "prefix-only cost",
              "with filling", "budget used (fill)");
  Example1Params gen;
  gen.seed = 3;
  Workload workload = GenerateExample1(gen);
  const ScanCostParams params{1.0, 100.0};
  for (double w : {0.1, 0.25, 0.5}) {
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, w);
    auto strict = SelectExplicit(problem, /*filling=*/false);
    auto filled = SelectExplicit(problem, /*filling=*/true);
    std::printf("%6.2f %16.3g %16.3g %15.1f%%\n", w, strict.scan_cost,
                filled.scan_cost,
                100.0 * filled.dram_bytes / problem.budget_bytes);
  }
}

void AblateBeta() {
  bench::PrintHeader("(3) reallocation cost beta sweep");
  std::printf("%10s %14s %18s\n", "beta", "moved bytes", "scan cost");
  Example1Params gen;
  gen.seed = 3;
  Workload workload = GenerateExample1(gen);
  const ScanCostParams params{1.0, 100.0};
  // Current allocation: optimum for a drifted variant of the workload.
  Example1Params drift = gen;
  drift.seed = 77;
  Workload drifted = GenerateExample1(drift);
  drifted.column_sizes = workload.column_sizes;
  drifted.selectivities = workload.selectivities;
  auto old_problem =
      SelectionProblem::FromRelativeBudget(drifted, params, 0.4);
  auto current = SelectIntegerOptimal(old_problem).in_dram;
  for (double beta : {0.0, 5.0, 20.0, 100.0, 1e4}) {
    auto problem = SelectionProblem::FromRelativeBudget(workload, params, 0.4);
    problem.current = current;
    problem.beta = beta;
    auto result = SelectIntegerOptimal(problem);
    double moved = 0;
    for (size_t i = 0; i < current.size(); ++i) {
      if (result.in_dram[i] != current[i]) moved += workload.column_sizes[i];
    }
    std::printf("%10.0f %13.1f MB %18.3g\n", beta, moved / 1e6,
                result.scan_cost);
  }
  std::printf("-> higher beta trades scan performance for fewer moves; "
              "beyond a point the placement freezes.\n");
}

void AblateProbeThreshold() {
  bench::PrintHeader("(4) scan->probe switch threshold (CH-19 on tiered "
                     "ol_quantity)");
  std::printf("%14s %16s\n", "threshold", "CH-19 latency");
  OrderlineParams params;
  params.warehouses = 4;
  params.orders_per_district = 60;
  const auto rows = GenerateOrderlineRows(params);
  for (double threshold : {1.0, 0.01, 1e-4, 1e-8}) {
    TieredTableOptions options;
    options.device = DeviceKind::kCssd;
    options.probe_threshold = threshold;
    TieredTable table("orderline", OrderlineSchema(), options);
    table.Load(rows);
    std::vector<bool> placement(10, false);
    for (ColumnId c : OrderlinePrimaryKey()) placement[c] = true;
    placement[kOlIId] = true;
    if (!table.ApplyPlacement(placement).ok()) return;
    Transaction txn = table.Begin();
    QueryResult r =
        table.ExecuteUnrecorded(txn, ChQuery19(1, 1, 250, 1, 1));
    std::printf("%14.0e %13.2f ms\n", threshold,
                double(r.io.TotalNs()) / 1e6);
  }
  std::printf("-> threshold 1 always probes (random reads); tiny thresholds "
              "always scan the group; the default 0.01%% picks per-query.\n");
}

void AblateSecondaryFormat() {
  // Paper §II-A motivation: "a full tuple reconstruction from a disk-
  // resident and dictionary-encoded column store reads at least 800 KB from
  // disk (100 accesses to both value vector and dictionary with 4 KB reads
  // each). In contrast ... SSCGs ... require only single 4 KB page accesses."
  bench::PrintHeader("(5) secondary-storage format: SSCG vs disk column "
                     "store (100-attribute tuple, CSSD)");
  const size_t attrs = 100;
  const size_t rows = 20000;
  Schema schema;
  for (size_t c = 0; c < attrs; ++c) {
    schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  Rng rng(5);
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    for (size_t c = 0; c < attrs; ++c) {
      row.emplace_back(int32_t(rng.NextBounded(rows)));
    }
    data.push_back(std::move(row));
  }
  SecondaryStore store(DeviceKind::kCssd);
  std::vector<DiskColumn> columns;
  for (size_t c = 0; c < attrs; ++c) {
    std::vector<Value> values;
    values.reserve(rows);
    for (size_t r = 0; r < rows; ++r) values.push_back(data[r][c]);
    columns.emplace_back(schema[c], values, &store);
  }
  std::vector<ColumnId> members;
  for (ColumnId c = 0; c < attrs; ++c) members.push_back(c);
  Sscg sscg(RowLayout(schema, members), data, &store);

  BufferManager cold_disk(&store, 8), cold_sscg(&store, 8);
  IoStats disk_io, sscg_io;
  const int reconstructions = 50;
  for (int i = 0; i < reconstructions; ++i) {
    const RowId row = rng.NextBounded(rows);
    for (size_t c = 0; c < attrs; ++c) {
      columns[c].GetValue(row, &cold_disk, 1, &disk_io);
    }
    sscg.ReconstructTuple(row, &cold_sscg, 1, &sscg_io);
  }
  std::printf("%-26s %14s %14s %14s\n", "format", "page reads",
              "bytes read", "mean latency");
  std::printf("%-26s %14.1f %11.1f KB %11.2f ms\n", "disk column store",
              double(disk_io.page_reads) / reconstructions,
              double(disk_io.page_reads) * kPageSize / 1024 /
                  reconstructions,
              double(disk_io.TotalNs()) / reconstructions / 1e6);
  std::printf("%-26s %14.1f %11.1f KB %11.2f ms\n", "SSCG (row group)",
              double(sscg_io.page_reads) / reconstructions,
              double(sscg_io.page_reads) * kPageSize / 1024 /
                  reconstructions,
              double(sscg_io.TotalNs()) / reconstructions / 1e6);
  std::printf("-> the paper's ~200 4 KB accesses (value vector + dictionary "
              "per attribute) vs one page for the row-oriented SSCG.\n");
}

}  // namespace

int main() {
  AblateSelectionInteraction();
  AblateFilling();
  AblateBeta();
  AblateProbeThreshold();
  AblateSecondaryFormat();
  bench::MaybeWriteMetricsSnapshot("ablation_selection");
  return 0;
}

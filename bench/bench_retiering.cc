// bench_retiering: the autonomous re-tiering daemon on the Table-1 skew
// flip (DESIGN.md §14).
//
// Usage: bench_retiering [--small]
//
// Three self-gating sections over a trimmed BSEG table:
//   1. Convergence — the daemon optimizes phase A, the hot set flips to the
//      opposite end of the schema mid-run, and the throttled plan drives
//      F(current) back to within a few percent of the recomputed optimum,
//      with per-window migration bytes never exceeding the throttle budget.
//   2. Zero thrash — under an A/B/A/B oscillation the 2-window workload
//      aggregation plus the regret deadband hold the placement still: zero
//      applied steps, zero new plans.
//   3. Determinism — the whole scenario, chaos armed (seeded silent write
//      corruption mid-plan), is bit-identical at 1/2/4 requested threads:
//      final placement, step outcomes, moved bytes, and fault schedules.
//
// Writes BENCH_retiering.json and a Prometheus snapshot (retier_metrics.txt)
// covering the hytap_retier_* and hytap_workload_drift families.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/retier_daemon.h"
#include "selection/cost_model.h"
#include "workload/enterprise.h"

using namespace hytap;

namespace {

struct Config {
  size_t rows = 6000;
  size_t cols = 24;
  size_t queries_per_phase = 48;
  uint64_t seed = 42;
  size_t hot_count = 6;
};

std::unique_ptr<TieredTable> MakeBseg(const Config& config) {
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = config.cols;
  TieredTableOptions options;
  options.device = DeviceKind::kCssd;
  options.timing_seed = config.seed;
  options.monitor.window_ns = 1'000'000'000'000'000ull;  // roll via ForceRoll
  auto table = std::make_unique<TieredTable>(
      "bseg", MakeEnterpriseSchema(profile), options);
  table->Load(GenerateEnterpriseRows(profile, config.rows, config.seed));
  return table;
}

/// Seeded hot-set mix; a fresh Rng per phase keeps every phase-A (resp. -B)
/// sequence identical so the oscillation aggregates to a stable mixture.
void RunPhase(TieredTable* table, const Config& config, size_t hot_base,
              uint32_t threads) {
  Rng rng(config.seed * 7919 + hot_base);
  Transaction txn = table->Begin();
  for (size_t q = 0; q < config.queries_per_phase; ++q) {
    Query query;
    const size_t hot = hot_base + size_t(rng.NextBounded(config.hot_count));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(hot), Value(int32_t(rng.NextBounded(8)))));
    if (q % 3 == 0) {
      const size_t other =
          hot_base + size_t(rng.NextBounded(config.hot_count));
      if (other != hot) {
        query.predicates.push_back(Predicate::Between(
            ColumnId(other), Value(int32_t{0}), Value(int32_t{40})));
      }
    }
    query.aggregates = {Aggregate::Count()};
    (void)table->Execute(txn, query, threads);
  }
  table->Commit(&txn);
}

double TotalBytes(const TieredTable& table) {
  double total = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total += double(table.table().ColumnDramBytes(c));
  }
  return total;
}

uint64_t MaxColumnBytes(const TieredTable& table) {
  uint64_t max_bytes = 0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    max_bytes =
        std::max<uint64_t>(max_bytes, table.table().ColumnDramBytes(c));
  }
  return max_bytes;
}

std::vector<uint8_t> CurrentPlacement(const TieredTable& table) {
  const std::vector<bool>& placement = table.table().placement();
  std::vector<uint8_t> current(placement.size());
  for (size_t i = 0; i < placement.size(); ++i) {
    current[i] = placement[i] ? 1 : 0;
  }
  return current;
}

/// F(current) vs the recomputed plain optimum at the same budget on
/// `workload`, as a relative gap in percent.
double OptimalityGapPct(const TieredTable& table, const Workload& workload,
                        double budget_bytes) {
  CostModel model(workload, ScanCostParams());
  const double current_cost = model.ScanCost(CurrentPlacement(table));
  SelectionProblem problem;
  problem.workload = &workload;
  problem.budget_bytes = budget_bytes;
  const SelectionResult optimum = SelectIntegerOptimal(problem);
  if (optimum.scan_cost <= 0.0) return 0.0;
  return 100.0 * (current_cost - optimum.scan_cost) / optimum.scan_cost;
}

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

struct ConvergenceResult {
  double phase_a_gap_pct = 0.0;
  double phase_b_gap_pct = 0.0;
  uint64_t throttle_budget = 0;
  uint64_t max_window_bytes = 0;
  size_t windows_to_converge = 0;
  uint64_t moved_bytes = 0;
  bool throttle_ok = true;
};

ConvergenceResult RunConvergence(const Config& config) {
  ConvergenceResult result;
  auto table = MakeBseg(config);
  RetierOptions options;
  options.drift_threshold = 0.25;
  options.min_improvement_pct = 1.0;
  options.dwell_windows = 0;
  options.periodic_windows = 1;
  options.recent_windows = 1;
  options.budget_bytes = 0.4 * TotalBytes(*table);
  options.bytes_per_window = MaxColumnBytes(*table) + 1024;
  result.throttle_budget = options.bytes_per_window;
  RetierDaemon daemon(table.get(), options);

  auto track = [&result](const RetierTickReport& tick) {
    result.max_window_bytes =
        std::max(result.max_window_bytes, tick.window_bytes);
  };
  auto drain = [&](const char* label) {
    size_t windows = 0;
    while (daemon.state() == RetierState::kMigrating && windows < 128) {
      table->monitor().ForceRoll();
      const RetierTickReport tick = daemon.Tick();
      track(tick);
      ++windows;
      std::printf("  %s window %llu: +%llu steps, window_bytes=%llu\n",
                  label, (unsigned long long)tick.window,
                  (unsigned long long)tick.steps_applied,
                  (unsigned long long)tick.window_bytes);
    }
    return windows;
  };

  // Phase A: observe, optimize, drain the throttled plan.
  RunPhase(table.get(), config, /*hot_base=*/1, /*threads=*/2);
  const Workload workload_a = table->monitor().ToWorkload(table->table(), 1);
  track(daemon.Tick());
  drain("phase A");
  result.phase_a_gap_pct =
      OptimalityGapPct(*table, workload_a, options.budget_bytes);

  // Mid-run skew flip: hot set moves to the opposite end of the schema.
  table->monitor().ForceRoll();
  RunPhase(table.get(), config, /*hot_base=*/config.cols - config.hot_count,
           /*threads=*/2);
  const Workload workload_b = table->monitor().ToWorkload(table->table(), 1);
  const double pre_flip_gap =
      OptimalityGapPct(*table, workload_b, options.budget_bytes);
  track(daemon.Tick());
  result.windows_to_converge = drain("phase B") + 1;
  result.phase_b_gap_pct =
      OptimalityGapPct(*table, workload_b, options.budget_bytes);
  std::printf(
      "  flip: F(current) gap vs recomputed optimum %.2f%% -> %.2f%% over "
      "%zu windows\n",
      pre_flip_gap, result.phase_b_gap_pct, result.windows_to_converge);

  // Cross-check the throttle from the plans' own step accounting.
  for (const RetierPlan& plan : daemon.history()) {
    result.moved_bytes += plan.moved_bytes;
    std::map<uint64_t, uint64_t> bytes_by_window;
    for (const RetierStep& step : plan.steps) {
      if (step.outcome == RetierStepOutcome::kApplied) {
        bytes_by_window[step.window] += step.bytes;
      }
    }
    for (const auto& [window, bytes] : bytes_by_window) {
      result.max_window_bytes = std::max(result.max_window_bytes, bytes);
      if (bytes > options.bytes_per_window) result.throttle_ok = false;
    }
  }
  return result;
}

struct OscillationResult {
  uint64_t applied_steps = 0;
  size_t plans_after_warmup = 0;
  size_t plans_total = 0;
};

OscillationResult RunOscillation(const Config& config) {
  OscillationResult result;
  auto table = MakeBseg(config);
  RetierOptions options;
  options.drift_threshold = 0.25;
  options.min_improvement_pct = 1.0;
  options.dwell_windows = 0;
  options.periodic_windows = 1;
  options.recent_windows = 2;  // span both sides of the flip
  options.budget_bytes = 0.4 * TotalBytes(*table);
  options.bytes_per_window = 0;  // unthrottled: isolate the hysteresis
  RetierDaemon daemon(table.get(), options);

  const size_t hot_a = 1;
  const size_t hot_b = config.cols - config.hot_count;
  RunPhase(table.get(), config, hot_a, 2);
  (void)daemon.Tick();
  table->monitor().ForceRoll();
  RunPhase(table.get(), config, hot_b, 2);
  (void)daemon.Tick();
  result.plans_after_warmup = daemon.history().size();

  for (int phase = 0; phase < 6; ++phase) {
    table->monitor().ForceRoll();
    RunPhase(table.get(), config, phase % 2 == 0 ? hot_a : hot_b, 2);
    const RetierTickReport tick = daemon.Tick();
    result.applied_steps += tick.steps_applied;
  }
  result.plans_total = daemon.history().size();
  std::printf(
      "  oscillation: %zu warmup plans, then %llu applied steps and %zu new "
      "plans over 6 alternating phases\n",
      result.plans_after_warmup,
      (unsigned long long)result.applied_steps,
      result.plans_total - result.plans_after_warmup);
  return result;
}

struct Signature {
  std::vector<bool> placement;
  std::vector<std::pair<uint32_t, uint8_t>> steps;
  uint64_t moved_bytes = 0;
  uint64_t corrupted_writes = 0;
  uint64_t checksum_failures = 0;
  uint64_t retries = 0;
  uint64_t quarantined_steps = 0;
  size_t probe_rows = 0;

  bool operator==(const Signature& other) const {
    return placement == other.placement && steps == other.steps &&
           moved_bytes == other.moved_bytes &&
           corrupted_writes == other.corrupted_writes &&
           checksum_failures == other.checksum_failures &&
           retries == other.retries &&
           quarantined_steps == other.quarantined_steps &&
           probe_rows == other.probe_rows;
  }
};

Signature RunChaosScenario(const Config& config, uint32_t threads) {
  Signature signature;
  auto table = MakeBseg(config);
  RetierOptions options;
  options.drift_threshold = 0.25;
  options.min_improvement_pct = 1.0;
  options.dwell_windows = 0;
  options.periodic_windows = 1;
  options.recent_windows = 1;
  options.budget_bytes = 0.4 * TotalBytes(*table);
  options.bytes_per_window = 0;
  RetierDaemon daemon(table.get(), options);

  RunPhase(table.get(), config, 1, threads);
  (void)daemon.Tick();

  FaultConfig faults;
  faults.seed = 1;
  faults.write_corruption_rate = 0.02;
  table->store().ConfigureFaults(faults);

  table->monitor().ForceRoll();
  RunPhase(table.get(), config, config.cols - config.hot_count, threads);
  (void)daemon.Tick();
  while (daemon.state() == RetierState::kMigrating) {
    table->monitor().ForceRoll();
    (void)daemon.Tick();
  }

  signature.placement = table->table().placement();
  for (const RetierPlan& plan : daemon.history()) {
    for (const RetierStep& step : plan.steps) {
      signature.steps.emplace_back(step.column, uint8_t(step.outcome));
    }
    signature.moved_bytes += plan.moved_bytes;
    signature.quarantined_steps += plan.quarantined_steps;
  }
  const FaultStats& stats = table->store().fault_stats();
  signature.corrupted_writes = stats.corrupted_writes;
  signature.checksum_failures = stats.checksum_failures;
  signature.retries = stats.retries;

  Query probe;
  probe.predicates.push_back(Predicate::Between(
      ColumnId(0), Value(int32_t{0}), Value(int32_t(config.rows))));
  probe.aggregates = {Aggregate::Count()};
  Transaction txn = table->Begin();
  signature.probe_rows =
      table->ExecuteUnrecorded(txn, probe, threads).positions.size();
  table->Commit(&txn);
  return signature;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      config.rows = 2000;
      config.cols = 16;
      config.queries_per_phase = 24;
      config.hot_count = 5;
    } else {
      std::fprintf(stderr, "usage: bench_retiering [--small]\n");
      return 2;
    }
  }

  SetMetricsEnabled(true);
  SetWorkloadMonitorEnabled(true);

  bench::PrintHeader(
      "Re-tiering daemon: skew-flip convergence, throttling, determinism");

  std::printf("convergence (throttled, %zu x %zu rows):\n", config.rows,
              config.cols);
  const ConvergenceResult convergence = RunConvergence(config);

  std::printf("zero thrash (oscillating A/B workload):\n");
  const OscillationResult oscillation = RunOscillation(config);

  std::printf("determinism (chaos armed, 1/2/4 threads):\n");
  const Signature one = RunChaosScenario(config, 1);
  const Signature two = RunChaosScenario(config, 2);
  const Signature four = RunChaosScenario(config, 4);
  const bool deterministic = one == two && one == four;
  std::printf(
      "  moved=%llu B, quarantined=%llu steps, corrupted_writes=%llu, "
      "checksum_failures=%llu -> %s\n",
      (unsigned long long)one.moved_bytes,
      (unsigned long long)one.quarantined_steps,
      (unsigned long long)one.corrupted_writes,
      (unsigned long long)one.checksum_failures,
      deterministic ? "bit-identical" : "MISMATCH");

  std::string json = "{";
  json += "\"phase_a_gap_pct\":" + TraceFormatDouble(convergence.phase_a_gap_pct);
  json += ",\"phase_b_gap_pct\":" + TraceFormatDouble(convergence.phase_b_gap_pct);
  json += ",\"throttle_budget_bytes\":" +
          std::to_string(convergence.throttle_budget);
  json += ",\"max_window_bytes\":" +
          std::to_string(convergence.max_window_bytes);
  json += ",\"windows_to_converge\":" +
          std::to_string(convergence.windows_to_converge);
  json += ",\"moved_bytes\":" + std::to_string(convergence.moved_bytes);
  json += ",\"oscillation_applied_steps\":" +
          std::to_string(oscillation.applied_steps);
  json += ",\"oscillation_new_plans\":" +
          std::to_string(oscillation.plans_total -
                         oscillation.plans_after_warmup);
  json += ",\"chaos_quarantined_steps\":" +
          std::to_string(one.quarantined_steps);
  json += ",\"chaos_corrupted_writes\":" +
          std::to_string(one.corrupted_writes);
  json += ",\"deterministic\":";
  json += deterministic ? "true" : "false";
  json += "}";
  WriteFile("BENCH_retiering.json", json + "\n");
  std::printf("results written to BENCH_retiering.json\n");

  const std::string prom =
      MetricsRegistry::Global().Snapshot().ToPrometheusText();
  WriteFile("retier_metrics.txt", prom);
  std::printf("metrics written to retier_metrics.txt\n");

  // Self-gating acceptance (the PR's bench criteria).
  bool ok = true;
  if (convergence.phase_a_gap_pct > 5.0) {
    std::fprintf(stderr, "FAIL: phase-A gap %.2f%% > 5%%\n",
                 convergence.phase_a_gap_pct);
    ok = false;
  }
  if (convergence.phase_b_gap_pct > 5.0) {
    std::fprintf(stderr, "FAIL: post-flip gap %.2f%% > 5%%\n",
                 convergence.phase_b_gap_pct);
    ok = false;
  }
  if (!convergence.throttle_ok ||
      convergence.max_window_bytes > convergence.throttle_budget) {
    std::fprintf(stderr, "FAIL: window bytes %llu exceed throttle %llu\n",
                 (unsigned long long)convergence.max_window_bytes,
                 (unsigned long long)convergence.throttle_budget);
    ok = false;
  }
  if (convergence.windows_to_converge < 2) {
    std::fprintf(stderr,
                 "FAIL: plan did not spread across windows (%zu)\n",
                 convergence.windows_to_converge);
    ok = false;
  }
  if (oscillation.applied_steps != 0 ||
      oscillation.plans_total != oscillation.plans_after_warmup) {
    std::fprintf(stderr, "FAIL: oscillation thrashed (%llu steps)\n",
                 (unsigned long long)oscillation.applied_steps);
    ok = false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: scenario not thread-count invariant\n");
    ok = false;
  }
  if (one.corrupted_writes == 0) {
    std::fprintf(stderr, "FAIL: chaos injected no write corruption\n");
    ok = false;
  }
  bench::MaybeWriteMetricsSnapshot("retiering");
  std::printf("retiering self-check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

// Reproduces Figure 9: "Runtime performance of sequential access patterns"
// on tiered column groups.
//  (a) scanning one attribute of an SSCG of width 1, 10, and 100 attributes
//      (costs scale with the group width: a 4 KB page holds fewer values the
//      wider the rows), across devices and thread counts;
//  (b) probing a tiered attribute at 0.1% and 10% candidate selectivity.
//
// Expected shape: scan cost grows linearly with the group width; HDDs do
// well for single-stream sequential IO but collapse with concurrent
// requests; NAND SSDs need deep queues; probing hits random-read behaviour.

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/random.h"
#include "storage/sscg.h"
#include "storage/zone_map.h"

using namespace hytap;

namespace {

Schema WideSchema(size_t width) {
  Schema schema;
  for (size_t c = 0; c < width; ++c) {
    schema.push_back({"c" + std::to_string(c), DataType::kInt32, 0});
  }
  return schema;
}

std::vector<Row> GroupRows(size_t rows, size_t width) {
  std::vector<Row> data;
  data.reserve(rows);
  for (size_t r = 0; r < rows; ++r) {
    Row row;
    row.reserve(width);
    for (size_t c = 0; c < width; ++c) {
      row.emplace_back(int32_t((r * 31 + c) % 1000));
    }
    data.push_back(std::move(row));
  }
  return data;
}

}  // namespace

int main(int argc, char** argv) {
  const bool small = argc > 1 && std::string(argv[1]) == "--small";
  const size_t rows = small ? 50000 : 200000;
  // The paper's figure measures full sequential passes; the synthetic data
  // ((r*31+c)%1000) is partially prunable, so data skipping would distort
  // the published shape. bench_data_skipping measures the pruned path.
  SetZoneMapsEnabled(false);

  bench::PrintHeader("Figure 9a: scanning one attribute of an SSCG");
  std::printf("%zu rows; cost = simulated wall time per scan\n", rows);
  std::printf("%-10s %8s | %12s %12s %12s\n", "device", "group",
              "1 thread", "8 threads", "32 threads");
  for (DeviceKind device : kSecondaryDevices) {
    for (size_t width : {1, 10, 100}) {
      SecondaryStore store(device);
      Schema schema = WideSchema(width);
      std::vector<ColumnId> members;
      for (ColumnId c = 0; c < width; ++c) members.push_back(c);
      Sscg sscg(RowLayout(schema, members), GroupRows(rows, width), &store);
      // Tiny cache: scans must hit the device.
      BufferManager buffers(&store, 16);
      std::printf("%-10s %5zu/%-2d |", DeviceKindName(device), size_t{1},
                  int(width));
      for (uint32_t threads : {1u, 8u, 32u}) {
        buffers.Clear();
        PositionList out;
        IoStats io;
        Value v(int32_t{5});
        sscg.ScanSlot(0, &v, &v, &buffers, threads, &out, &io);
        std::printf(" %10.2f ms", double(io.WallNs(threads)) / 1e6);
      }
      std::printf("\n");
    }
  }

  bench::PrintHeader("Figure 9b: probing a tiered attribute (1/100 group)");
  std::printf("%-10s %12s | %12s %12s %12s\n", "device", "selectivity",
              "1 thread", "8 threads", "32 threads");
  const size_t width = 100;
  Schema schema = WideSchema(width);
  std::vector<ColumnId> members;
  for (ColumnId c = 0; c < width; ++c) members.push_back(c);
  const auto rows_data = GroupRows(rows, width);
  for (DeviceKind device : kSecondaryDevices) {
    SecondaryStore store(device);
    Sscg sscg(RowLayout(schema, members), rows_data, &store);
    BufferManager buffers(&store, 64);
    for (double selectivity : {0.001, 0.1}) {
      // Random candidate positions (sorted), as produced by prior filters.
      Rng rng(99);
      PositionList candidates;
      const size_t count = size_t(double(rows) * selectivity);
      for (size_t k = 0; k < count; ++k) {
        candidates.push_back(rng.NextBounded(rows));
      }
      std::sort(candidates.begin(), candidates.end());
      candidates.erase(std::unique(candidates.begin(), candidates.end()),
                       candidates.end());
      std::printf("%-10s %11.1f%% |", DeviceKindName(device),
                  100.0 * selectivity);
      for (uint32_t threads : {1u, 8u, 32u}) {
        buffers.Clear();
        PositionList out;
        IoStats io;
        Value v(int32_t{5});
        sscg.ProbeSlot(0, &v, &v, candidates, &buffers, threads, &out, &io);
        std::printf(" %10.2f ms", double(io.WallNs(threads)) / 1e6);
      }
      std::printf("\n");
    }
  }
  std::printf("\n-> scan cost scales with SSCG width; HDD collapses under "
              "concurrent streams; SSD probing needs queue depth "
              "(paper Fig. 9).\n");
  bench::MaybeWriteMetricsSnapshot("fig9_scan_probe");
  return 0;
}

// hytap-workload-gen: generates reproducible workload files.
//
// Usage:
//   workload_gen_cli example1 [--columns N] [--queries Q] [--seed S]
//   workload_gen_cli enterprise <BSEG|ACDOCA|VBAP|BKPF|COEP> [--seed S]
//
// Output goes to stdout in the `hytap-workload v1` format.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/workload_io.h"
#include "workload/enterprise.h"
#include "workload/example1.h"

using namespace hytap;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: workload_gen_cli example1 [--columns N] [--queries Q]"
               " [--seed S]\n"
               "       workload_gen_cli enterprise <TABLE> [--seed S]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string kind = argv[1];
  uint64_t seed = 1;
  if (kind == "example1") {
    Example1Params params;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string arg = argv[i];
      if (arg == "--columns") {
        params.num_columns = size_t(std::atoll(argv[i + 1]));
      } else if (arg == "--queries") {
        params.num_queries = size_t(std::atoll(argv[i + 1]));
      } else if (arg == "--seed") {
        params.seed = uint64_t(std::atoll(argv[i + 1]));
      } else {
        return Usage();
      }
    }
    std::fputs(SerializeWorkload(GenerateExample1(params)).c_str(), stdout);
    return 0;
  }
  if (kind == "enterprise") {
    if (argc < 3) return Usage();
    const std::string table = argv[2];
    for (int i = 3; i + 1 < argc; i += 2) {
      if (std::string(argv[i]) == "--seed") {
        seed = uint64_t(std::atoll(argv[i + 1]));
      } else {
        return Usage();
      }
    }
    for (const EnterpriseProfile& profile : SapErpProfiles()) {
      if (profile.table_name == table) {
        std::fputs(
            SerializeWorkload(GenerateEnterpriseWorkload(profile, seed))
                .c_str(),
            stdout);
        return 0;
      }
    }
    std::fprintf(stderr, "unknown table: %s\n", table.c_str());
    return 1;
  }
  return Usage();
}

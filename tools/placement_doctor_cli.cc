// hytap-placement-doctor: demonstrate the placement doctor on the Table-1
// skew-flip scenario over a trimmed BSEG table.
//
// Usage:
//   placement_doctor_cli [--rows <n>] [--cols <n>] [--queries <n>]
//       [--threads <n>] [--seed <n>] [--budget-share <w>] [--topk <k>]
//       [--out <json path>] [--out-prom <prom path>]
//
// Phase A runs a query mix over a "hot" set of low payload columns, applies
// the Advisor at the given budget, and diagnoses: regret should be ~0 (the
// placement was just optimized for exactly this workload). The workload then
// flips its hot set to the opposite end of the schema (mirroring
// bench_table1_workload_skew); the doctor, diagnosing only the newest
// window, must report strictly positive regret with the flipped columns in
// its top-k misplaced list. Exit code 0 only if both hold.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "core/advisor.h"
#include "core/placement_doctor.h"
#include "core/tiered_table.h"
#include "workload/enterprise.h"
#include "workload/workload_monitor.h"

using namespace hytap;

namespace {

struct Options {
  size_t rows = 20000;
  size_t cols = 24;
  size_t queries = 48;  // per phase
  uint32_t threads = 2;
  uint64_t seed = 42;
  double budget_share = 0.35;
  size_t top_k = 8;
  std::string out;
  std::string out_prom;
};

int Usage() {
  std::fprintf(stderr,
               "usage: placement_doctor_cli [--rows <n>] [--cols <n>] "
               "[--queries <n>] [--threads <n>] [--seed <n>] "
               "[--budget-share <w>] [--topk <k>] [--out <path>] "
               "[--out-prom <path>]\n");
  return 2;
}

/// Seeded conjunctive mix concentrated on `hot_count` payload columns
/// starting at `hot_base`: selective equalities (with occasional
/// two-predicate templates) so the hot columns dominate g_i.
void RunPhase(TieredTable* table, const Options& options, size_t hot_base,
              size_t hot_count, Rng* rng) {
  Transaction txn = table->Begin();
  for (size_t q = 0; q < options.queries; ++q) {
    Query query;
    const size_t hot = hot_base + size_t(rng->NextBounded(hot_count));
    query.predicates.push_back(
        Predicate::Equals(ColumnId(hot), Value(int32_t(rng->NextBounded(8)))));
    if (q % 3 == 0) {
      const size_t other = hot_base + size_t(rng->NextBounded(hot_count));
      if (other != hot) {
        query.predicates.push_back(Predicate::Between(
            ColumnId(other), Value(int32_t{0}), Value(int32_t{40})));
      }
    }
    query.aggregates = {Aggregate::Count()};
    (void)table->Execute(txn, query, options.threads);
  }
  table->Commit(&txn);
}

bool WriteFile(const std::string& path, const std::string& content) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(content.c_str(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    uint64_t value = 0;
    if (arg == "--rows") {
      if (!next_u64(&value)) return Usage();
      options.rows = size_t(value);
    } else if (arg == "--cols") {
      if (!next_u64(&value)) return Usage();
      options.cols = size_t(value);
    } else if (arg == "--queries") {
      if (!next_u64(&value)) return Usage();
      options.queries = size_t(value);
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      options.threads = uint32_t(value);
    } else if (arg == "--seed") {
      if (!next_u64(&options.seed)) return Usage();
    } else if (arg == "--budget-share") {
      if (i + 1 >= argc) return Usage();
      options.budget_share = std::strtod(argv[++i], nullptr);
    } else if (arg == "--topk") {
      if (!next_u64(&value)) return Usage();
      options.top_k = size_t(value);
    } else if (arg == "--out") {
      if (i + 1 >= argc) return Usage();
      options.out = argv[++i];
    } else if (arg == "--out-prom") {
      if (i + 1 >= argc) return Usage();
      options.out_prom = argv[++i];
    } else {
      return Usage();
    }
  }
  if (options.rows < 16 || options.cols < 8 || options.queries < 8 ||
      options.threads == 0 || options.budget_share <= 0.0 ||
      options.budget_share > 1.0 || options.top_k == 0) {
    return Usage();
  }

  SetMetricsEnabled(true);
  SetWorkloadMonitorEnabled(true);

  // Trimmed BSEG: same column-cardinality shape, CLI-sized width.
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = options.cols;

  TieredTableOptions table_options;
  table_options.device = DeviceKind::kCssd;
  table_options.timing_seed = options.seed;
  // Phases are separated manually via ForceRoll(): make windows effectively
  // unbounded on the simulated clock so each phase stays in one window.
  table_options.monitor.window_ns = 1'000'000'000'000'000ull;
  TieredTable table("bseg", MakeEnterpriseSchema(profile), table_options);
  table.Load(GenerateEnterpriseRows(profile, options.rows, options.seed));

  // The hot set is a third of the payload (min 4 columns); phase B flips it
  // to the opposite end of the schema.
  const size_t hot_count =
      std::max<size_t>(4, (options.cols - 1) / 3);
  const size_t hot_a = 1;
  const size_t hot_b = options.cols - hot_count;

  Rng rng(options.seed * 7919 + 1);
  RunPhase(&table, options, hot_a, hot_count, &rng);

  // Optimize the placement for the observed phase-A workload.
  double total_bytes = 0.0;
  for (ColumnId c = 0; c < table.table().column_count(); ++c) {
    total_bytes += double(table.table().ColumnDramBytes(c));
  }
  Advisor advisor;
  auto migrated =
      advisor.Apply(&table, options.budget_share * total_bytes);
  if (!migrated.ok()) {
    std::fprintf(stderr, "advisor apply failed: %s\n",
                 migrated.status().ToString().c_str());
    return 1;
  }

  DoctorOptions doctor_options;
  doctor_options.top_k = options.top_k;
  PlacementDoctor doctor(doctor_options);
  const DoctorReport report_a = doctor.Diagnose(table);
  std::printf("=== phase A (after Advisor::Apply) ===\n%s\n",
              report_a.ToText().c_str());

  // Skew flip: the hot set moves to columns the advisor just evicted.
  table.monitor().ForceRoll();
  RunPhase(&table, options, hot_b, hot_count, &rng);

  DoctorOptions recent_options = doctor_options;
  recent_options.recent_windows = 1;  // diagnose the post-flip window only
  PlacementDoctor recent_doctor(recent_options);
  const DoctorReport report_b = recent_doctor.Diagnose(table);
  std::printf("=== phase B (after skew flip) ===\n%s\n",
              report_b.ToText().c_str());

  if (!options.out.empty()) {
    const std::string json =
        "[" + report_a.ToJson() + "," + report_b.ToJson() + "]";
    if (!WriteFile(options.out, json)) {
      std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fprintf(stderr, "doctor reports written to %s\n",
                 options.out.c_str());
  }
  if (!options.out_prom.empty()) {
    const std::string prom =
        MetricsRegistry::Global().Snapshot().ToPrometheusText();
    if (!WriteFile(options.out_prom, prom)) {
      std::fprintf(stderr, "cannot write %s\n", options.out_prom.c_str());
      return 1;
    }
    std::fprintf(stderr, "metrics written to %s\n", options.out_prom.c_str());
  }

  // Self-gating acceptance: near-zero regret right after Apply, strictly
  // positive (and larger) regret after the flip, with at least one flipped
  // hot column among the top-k misplaced.
  bool ok = true;
  if (report_a.regret_pct > 1.0) {
    std::fprintf(stderr, "FAIL: phase-A regret %.3f%% > 1%% after Apply\n",
                 report_a.regret_pct);
    ok = false;
  }
  if (report_b.regret <= 0.0 || report_b.regret_pct <= report_a.regret_pct) {
    std::fprintf(stderr, "FAIL: phase-B regret not positive (%.3f%%)\n",
                 report_b.regret_pct);
    ok = false;
  }
  bool flipped_in_topk = false;
  for (const MisplacedColumn& column : report_b.misplaced) {
    if (column.column >= hot_b && column.column < hot_b + hot_count &&
        column.in_dram_recommended && !column.in_dram_now) {
      flipped_in_topk = true;
      break;
    }
  }
  if (!flipped_in_topk) {
    std::fprintf(stderr,
                 "FAIL: no flipped hot column in phase-B top-%zu misplaced\n",
                 options.top_k);
    ok = false;
  }
  std::printf("doctor self-check: %s\n", ok ? "PASS" : "FAIL");
  return ok ? 0 : 1;
}

#!/usr/bin/env bash
# promtool-style lint of the engine's Prometheus text exposition.
#
# Usage: check_prometheus.sh <metrics.txt> [--require-solver]
#     [--require-retier] [--require-sessions] [--require-slo]
#     [--require-phases]
#
# Validates (with plain grep -E, no promtool dependency) that:
#   - every line is a `# TYPE` comment or a `name[{labels}] value` sample;
#   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*;
#   - every sample's metric family was declared by a preceding # TYPE line
#     (histogram families own their _bucket/_sum/_count series);
#   - histogram families expose _bucket series with an le label, a +Inf
#     bucket, and _sum/_count series;
#   - the core engine families instrumented by the observability layer are
#     present;
#   - with --require-solver, the hytap_solver_* families of the anytime
#     solver portfolio are present too (snapshots from `stats_cli --solver`);
#   - with --require-retier, the hytap_retier_* families of the re-tiering
#     daemon plus the hytap_workload_drift gauge are present (snapshots from
#     `bench_retiering`);
#   - with --require-sessions, the hytap_session_* families of the serving
#     front end are present (snapshots from `stats_cli --sessions` or
#     `bench_serving`);
#   - with --require-slo, the hytap_slo_* families of the SLO burn-rate
#     monitor plus the hytap_flight_* recorder counters are present
#     (snapshots from `stats_cli --slo`);
#   - with --require-phases, the hytap_phase_* families of the latency
#     profiler (per-class phase histograms with interpolated quantile
#     gauges, dominant-phase/share gauges, attribution counters) are
#     present (snapshots from `stats_cli --phases`).
set -u

require_solver=0
require_retier=0
require_sessions=0
require_slo=0
require_phases=0
file=""
for arg in "$@"; do
  case "$arg" in
    --require-solver) require_solver=1 ;;
    --require-retier) require_retier=1 ;;
    --require-sessions) require_sessions=1 ;;
    --require-slo) require_slo=1 ;;
    --require-phases) require_phases=1 ;;
    -*)
      echo "check_prometheus: unknown flag '$arg'" >&2
      exit 2
      ;;
    *) file="$arg" ;;
  esac
done
if [ -z "$file" ] || [ ! -r "$file" ]; then
  echo "usage: check_prometheus.sh <metrics.txt> [--require-solver]" \
       "[--require-retier] [--require-sessions] [--require-slo]" \
       "[--require-phases]" >&2
  exit 2
fi
status=0

fail() {
  echo "check_prometheus: FAIL: $*" >&2
  status=1
}

name_re='[a-zA-Z_:][a-zA-Z0-9_:]*'
value_re='(-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|\+?Inf|-Inf|NaN)'

# 1. Line grammar: TYPE comments, HELP comments, samples, blank lines.
bad_lines=$(grep -n -E -v \
  "^(# (TYPE ${name_re} (counter|gauge|histogram)|HELP ${name_re}.*)|${name_re}(\{[^}]*\})? ${value_re}|)$" \
  "$file" || true)
if [ -n "$bad_lines" ]; then
  fail "malformed lines:"$'\n'"$bad_lines"
fi

# 2. Every sample belongs to a declared family.
declared=$(sed -n -E "s/^# TYPE (${name_re}) .*/\1/p" "$file" | sort -u)
samples=$(grep -E -o "^${name_re}" "$file" | sort -u)
for sample in $samples; do
  base=$(printf '%s' "$sample" | sed -E 's/_(bucket|sum|count)$//')
  if ! printf '%s\n' "$declared" | grep -q -x -e "$sample" -e "$base"; then
    fail "sample '$sample' has no # TYPE declaration"
  fi
done

# 3. Histogram families are complete: le-labelled buckets, +Inf, sum, count.
histograms=$(sed -n -E "s/^# TYPE (${name_re}) histogram$/\1/p" "$file")
for h in $histograms; do
  grep -q -E "^${h}_bucket\{le=\"[^\"]+\"\} [0-9]+$" "$file" \
    || fail "histogram '$h' has no le-labelled buckets"
  grep -q -E "^${h}_bucket\{le=\"\+Inf\"\} [0-9]+$" "$file" \
    || fail "histogram '$h' has no +Inf bucket"
  grep -q -E "^${h}_sum [0-9]+" "$file" || fail "histogram '$h' has no _sum"
  grep -q -E "^${h}_count [0-9]+" "$file" \
    || fail "histogram '$h' has no _count"
done

# 4. The engine's core metric families must be exported after a workload run.
for family in \
  hytap_buffer_hits_total \
  hytap_buffer_misses_total \
  hytap_store_reads_total \
  hytap_store_read_latency_ns \
  hytap_sscg_pages_scanned_total \
  hytap_scan_morsels_scanned_total \
  hytap_query_executions_total \
  hytap_query_simulated_ns \
  hytap_txn_begins_total; do
  grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
    || fail "expected engine metric family '$family' missing"
done

# 5. Opt-in: solver-portfolio families (only emitted when a diagnosis ran
# through the portfolio, e.g. `stats_cli --solver`).
if [ "$require_solver" -eq 1 ]; then
  for family in \
    hytap_solver_runs_total \
    hytap_solver_nodes_total \
    hytap_solver_pruned_total \
    hytap_solver_incumbent_updates_total \
    hytap_solver_deadline_stops_total \
    hytap_solver_last_gap_ppm \
    hytap_solver_last_budget_ms \
    hytap_solver_wall_ns; do
    grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
      || fail "expected solver metric family '$family' missing"
  done
  grep -q -E "^hytap_solver_wins_(exact|explicit|greedy)_total " "$file" \
    || fail "no hytap_solver_wins_*_total sample found"
fi

# 6. Opt-in: re-tiering daemon families (emitted once a RetierDaemon ticked,
# e.g. `bench_retiering`), plus the workload-drift gauge it keys on.
if [ "$require_retier" -eq 1 ]; then
  for family in \
    hytap_retier_ticks_total \
    hytap_retier_evaluations_total \
    hytap_retier_plans_started_total \
    hytap_retier_plans_completed_total \
    hytap_retier_plans_aborted_total \
    hytap_retier_plans_held_total \
    hytap_retier_steps_applied_total \
    hytap_retier_steps_quarantined_total \
    hytap_retier_steps_skipped_total \
    hytap_retier_moved_bytes_total \
    hytap_retier_state \
    hytap_retier_window_bytes \
    hytap_retier_last_improvement_pct_milli \
    hytap_retier_beta_milli \
    hytap_workload_drift; do
    grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
      || fail "expected re-tiering metric family '$family' missing"
  done
fi

# 7. Opt-in: serving front-end families (emitted once a SessionManager ran,
# e.g. `stats_cli --sessions` or `bench_serving`).
if [ "$require_sessions" -eq 1 ]; then
  for family in \
    hytap_session_submitted_total \
    hytap_session_admitted_total \
    hytap_session_rejected_total \
    hytap_session_shed_deadline_total \
    hytap_session_cancelled_total \
    hytap_session_completed_total \
    hytap_session_inflight \
    hytap_session_queued \
    hytap_session_oltp_latency_ns \
    hytap_session_olap_latency_ns \
    hytap_session_oltp_queue_wait_ns \
    hytap_session_olap_queue_wait_ns; do
    grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
      || fail "expected serving metric family '$family' missing"
  done
fi

# 8. Opt-in: SLO burn-rate monitor families plus the flight-recorder
# counters (emitted once an SloMonitor observed sessions and exported its
# gauges, e.g. `stats_cli --slo`).
if [ "$require_slo" -eq 1 ]; then
  for family in \
    hytap_slo_observations_total \
    hytap_slo_violations_total \
    hytap_slo_breaches_total \
    hytap_slo_clears_total \
    hytap_slo_oltp_burn_milli \
    hytap_slo_olap_burn_milli \
    hytap_slo_oltp_breached \
    hytap_slo_olap_breached \
    hytap_flight_events_total; do
    grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
      || fail "expected SLO metric family '$family' missing"
  done
fi

# 9. Opt-in: latency-profiler phase families (emitted once a LatencyProfiler
# observed sessions and exported its gauges, e.g. `stats_cli --phases`).
if [ "$require_phases" -eq 1 ]; then
  for family in \
    hytap_phase_observations_total \
    hytap_phase_attributions_total \
    hytap_phase_attributions_dropped_total \
    hytap_phase_oltp_dominant \
    hytap_phase_olap_dominant; do
    grep -q -E "^# TYPE ${family} (counter|gauge|histogram)$" "$file" \
      || fail "expected phase metric family '$family' missing"
  done
  for cls in oltp olap; do
    for phase in scan_probe delta materialize store_io retry_backoff; do
      family="hytap_phase_${cls}_${phase}_ns"
      grep -q -E "^# TYPE ${family} histogram$" "$file" \
        || fail "expected phase histogram family '$family' missing"
      grep -q -E "^# TYPE ${family}_p99 gauge$" "$file" \
        || fail "expected interpolated quantile gauge '${family}_p99' missing"
      grep -q -E "^# TYPE hytap_phase_${cls}_${phase}_share_ppm gauge$" \
        "$file" \
        || fail "expected share gauge 'hytap_phase_${cls}_${phase}_share_ppm'"
    done
  done
fi

if [ "$status" -eq 0 ]; then
  echo "check_prometheus: OK ($(grep -c -E "^# TYPE " "$file") families)"
fi
exit "$status"

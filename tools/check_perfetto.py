#!/usr/bin/env python3
"""Sanity-check a Chrome trace-event / Perfetto JSON timeline.

Usage: check_perfetto.py <timeline.json>

Validates (stdlib only, no Perfetto dependency) that:
  - the file is valid JSON with a `traceEvents` list;
  - every event carries the required keys for its phase type;
  - per (pid, tid) track, complete ("X") slices are sorted by start
    timestamp and do not overlap (closed lanes: each lane is a serial
    timeline of execute slices);
  - every flow id seen has at least one start ("s") and one finish ("f")
    event, i.e. admit -> dispatch -> terminal chains round-trip;
  - process/thread metadata ("M") names the tracks used by slices.

Exits non-zero with a diagnostic on the first class of violation found.
"""

import json
import sys
from collections import defaultdict


def fail(msg):
    print("check_perfetto: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) != 2:
        print("usage: check_perfetto.py <timeline.json>", file=sys.stderr)
        return 2
    with open(argv[1], "r", encoding="utf-8") as f:
        try:
            doc = json.load(f)
        except json.JSONDecodeError as e:
            fail("invalid JSON: %s" % e)

    if not isinstance(doc, dict) or not isinstance(
        doc.get("traceEvents"), list
    ):
        fail("missing traceEvents list")
    events = doc["traceEvents"]
    if not events:
        fail("empty traceEvents")

    slices = defaultdict(list)  # (pid, tid) -> [(ts, dur)]
    flows = defaultdict(set)  # flow id -> set of phases seen
    named_tracks = set()  # (pid, tid) with thread_name metadata
    named_pids = set()  # pid with process_name metadata

    for i, e in enumerate(events):
        if not isinstance(e, dict) or "ph" not in e:
            fail("event %d has no ph" % i)
        ph = e["ph"]
        if ph == "M":
            if e.get("name") == "process_name":
                named_pids.add(e.get("pid"))
            elif e.get("name") == "thread_name":
                named_tracks.add((e.get("pid"), e.get("tid")))
            continue
        for key in ("ts", "pid", "tid", "name"):
            if key not in e:
                fail("event %d (ph=%s) missing %s" % (i, ph, key))
        if ph == "X":
            if "dur" not in e:
                fail("X slice %d ('%s') has no dur" % (i, e["name"]))
            slices[(e["pid"], e["tid"])].append(
                (float(e["ts"]), float(e["dur"]), e["name"])
            )
        elif ph in ("s", "t", "f"):
            if "id" not in e:
                fail("flow event %d ('%s') has no id" % (i, e["name"]))
            flows[e["id"]].add(ph)
        elif ph == "i":
            pass  # instants only need the common keys checked above
        else:
            fail("event %d has unexpected ph '%s'" % (i, ph))

    if not slices:
        fail("no complete (X) slices")

    # Timestamps are microseconds rendered to 3 decimals (nanosecond grid);
    # ts + dur re-accumulates rounding, so boundary comparisons get half a
    # nanosecond of slack.
    eps = 0.0005
    for (pid, tid), lane in slices.items():
        prev_ts = -1.0
        stack = []  # ends of still-open enclosing slices (nesting allowed)
        for ts, dur, name in lane:
            if dur < 0:
                fail("negative dur on (%s,%s) '%s'" % (pid, tid, name))
            if ts < prev_ts:
                fail(
                    "track (%s,%s) not ts-sorted: '%s'@%s after ts %s"
                    % (pid, tid, name, ts, prev_ts)
                )
            prev_ts = ts
            end = ts + dur
            while stack and ts >= stack[-1] - eps:
                stack.pop()
            if stack and end > stack[-1] + eps:
                fail(
                    "track (%s,%s) partial overlap: '%s' [%s, %s] crosses "
                    "enclosing slice end %s"
                    % (pid, tid, name, ts, end, stack[-1])
                )
            stack.append(end)
        if (pid, tid) not in named_tracks:
            fail("track (%s,%s) has slices but no thread_name" % (pid, tid))
        if pid not in named_pids:
            fail("pid %s has slices but no process_name" % pid)

    for fid, phases in flows.items():
        if "s" not in phases:
            fail("flow id %s has no start (s) event" % fid)
        if "f" not in phases:
            fail("flow id %s has no finish (f) event" % fid)

    print(
        "check_perfetto: OK (%d events, %d tracks, %d flows)"
        % (len(events), len(slices), len(flows))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

// hytap-stats: run a trimmed enterprise workload through the engine and dump
// the process-wide metrics registry.
//
// Usage:
//   stats_cli [--rows <n>] [--cols <n>] [--queries <n>] [--threads <n>]
//       [--seed <n>] [--trace] [--trace-out <path>] [--doctor] [--solver]
//       [--sessions] [--slo] [--phases] [--phases-out <path>]
//       [--format prom|json] [--out <path>]
//
// Builds a BSEG-shaped table (column 0 is a unique document number held in
// DRAM, the remaining payload columns are mostly tiered), executes a seeded
// mix of point/range queries through the engine, and writes the resulting
// metrics snapshot in Prometheus text or JSON format. With --trace, the
// EXPLAIN operator tree of the first queries is printed too; with --doctor,
// the placement doctor's report on the observed workload is printed to
// stderr (its gauges always flow into the snapshot). With --solver, the
// doctor recommends through the anytime solver portfolio (deadline from
// HYTAP_SOLVER_BUDGET_MS, default 50 ms here) so the hytap_solver_* family
// lands in the snapshot too. With --sessions, the query mix runs through
// the high-concurrency serving front end (EnableServing; worker count and
// queue bound honor HYTAP_MAX_SESSIONS / HYTAP_SESSION_*) instead of the
// synchronous path, so the hytap_session_* family lands in the snapshot.
// With --slo (implies --sessions), an SLO burn-rate monitor (objectives from
// HYTAP_SLO_*) observes every completed session, so the hytap_slo_* family
// lands in the snapshot too. With --phases (implies --sessions), a latency
// profiler attaches to the serving front end and accounts every ticket's
// simulated latency into lifecycle phases (DESIGN.md §17): the deterministic
// per-class phase report (text or JSON per --format) is printed to stderr —
// or to --phases-out — and the hytap_phase_* family lands in the snapshot.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "core/placement_doctor.h"
#include "core/tiered_table.h"
#include "serving/latency_profiler.h"
#include "serving/session_manager.h"
#include "serving/slo_monitor.h"
#include "workload/enterprise.h"

using namespace hytap;

namespace {

struct Options {
  size_t rows = 20000;
  size_t cols = 24;
  size_t queries = 32;
  uint32_t threads = 2;
  uint64_t seed = 42;
  bool trace = false;
  bool doctor = false;
  bool solver = false;
  bool sessions = false;
  bool slo = false;
  bool phases = false;
  std::string format = "prom";
  std::string out;
  std::string phases_out;
  std::string trace_out;
};

int Usage() {
  std::fprintf(stderr,
               "usage: stats_cli [--rows <n>] [--cols <n>] [--queries <n>] "
               "[--threads <n>] [--seed <n>] [--trace] [--trace-out <path>] "
               "[--doctor] [--solver] "
               "[--sessions] [--slo] [--phases] [--phases-out <path>] "
               "[--format prom|json] [--out <path>]\n");
  return 2;
}

/// Seeded conjunctive query mix: an equality on a low-cardinality payload
/// column plus a range over the document number, alternating with wide
/// payload-only ranges so both the probe and the rescan paths run.
std::vector<Query> MakeQueries(const Options& options, Rng* rng) {
  std::vector<Query> queries;
  queries.reserve(options.queries);
  const int32_t rows = int32_t(options.rows);
  for (size_t q = 0; q < options.queries; ++q) {
    Query query;
    const size_t payload =
        1 + size_t(rng->NextBounded(uint64_t(options.cols - 1)));
    if (q % 2 == 0) {
      // Selective: equality on a payload code, then a document-number range.
      query.predicates.push_back(
          Predicate::Equals(payload, Value(int32_t(rng->NextBounded(8)))));
      const int32_t lo = int32_t(rng->NextBounded(uint64_t(rows / 2)));
      query.predicates.push_back(
          Predicate::Between(0, Value(lo), Value(lo + rows / 4)));
    } else {
      // Wide: payload range that keeps most candidates (rescan side).
      query.predicates.push_back(
          Predicate::Between(payload, Value(int32_t{0}), Value(int32_t{150})));
      query.predicates.push_back(Predicate::Between(
          0, Value(int32_t{0}), Value(int32_t(rows - rows / 8))));
    }
    query.aggregates = {Aggregate::Count()};
    if (q % 3 == 0) query.projections = {ColumnId(0), ColumnId(payload)};
    queries.push_back(std::move(query));
  }
  return queries;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_u64 = [&](uint64_t* out) {
      if (i + 1 >= argc) return false;
      *out = std::strtoull(argv[++i], nullptr, 10);
      return true;
    };
    uint64_t value = 0;
    if (arg == "--rows") {
      if (!next_u64(&value)) return Usage();
      options.rows = size_t(value);
    } else if (arg == "--cols") {
      if (!next_u64(&value)) return Usage();
      options.cols = size_t(value);
    } else if (arg == "--queries") {
      if (!next_u64(&value)) return Usage();
      options.queries = size_t(value);
    } else if (arg == "--threads") {
      if (!next_u64(&value)) return Usage();
      options.threads = uint32_t(value);
    } else if (arg == "--seed") {
      if (!next_u64(&options.seed)) return Usage();
    } else if (arg == "--trace") {
      options.trace = true;
    } else if (arg == "--trace-out") {
      if (i + 1 >= argc) return Usage();
      options.trace = true;
      options.trace_out = argv[++i];
    } else if (arg == "--doctor") {
      options.doctor = true;
    } else if (arg == "--solver") {
      options.solver = true;
    } else if (arg == "--sessions") {
      options.sessions = true;
    } else if (arg == "--slo") {
      options.slo = true;
      options.sessions = true;
    } else if (arg == "--phases") {
      options.phases = true;
      options.sessions = true;
    } else if (arg == "--phases-out") {
      if (i + 1 >= argc) return Usage();
      options.phases_out = argv[++i];
      options.phases = true;
      options.sessions = true;
    } else if (arg == "--format") {
      if (i + 1 >= argc) return Usage();
      options.format = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) return Usage();
      options.out = argv[++i];
    } else {
      return Usage();
    }
  }
  if (options.rows < 16 || options.cols < 2 || options.queries == 0 ||
      options.threads == 0 ||
      (options.format != "prom" && options.format != "json")) {
    return Usage();
  }

  SetMetricsEnabled(true);

  // Trimmed BSEG: same column-cardinality shape, CLI-sized width.
  EnterpriseProfile profile = BsegProfile();
  profile.attribute_count = options.cols;
  TieredTableOptions table_options;
  table_options.device = DeviceKind::kCssd;
  table_options.timing_seed = options.seed;
  TieredTable table("bseg", MakeEnterpriseSchema(profile), table_options);
  table.Load(GenerateEnterpriseRows(profile, options.rows, options.seed));

  // Document number stays in DRAM; most payload columns are evicted (the
  // paper's BSEG placement: the hot filtered minority pins, the rest tiers).
  std::vector<bool> in_dram(options.cols, false);
  in_dram[0] = true;
  for (size_t c = 1; c < options.cols; c += 5) in_dram[c] = true;
  auto placed = table.ApplyPlacement(in_dram);
  if (!placed.ok()) {
    std::fprintf(stderr, "placement failed: %s\n",
                 placed.status().ToString().c_str());
    return 1;
  }

  Rng rng(options.seed * 7919 + 1);
  const std::vector<Query> queries = MakeQueries(options, &rng);
  Transaction txn = table.Begin();
  size_t failures = 0;
  uint64_t total_rows = 0;
  if (options.trace) {
    // EXPLAIN path: traced, unrecorded (keeps plan cache/monitor counts
    // at one entry per issued query).
    for (size_t q = 0; q < 2 && q < queries.size(); ++q) {
      QueryExecutor executor(&table.table());
      const ExplainResult explain =
          executor.Explain(txn, queries[q], options.threads);
      std::printf("--- EXPLAIN query %zu ---\n%s", q, explain.text.c_str());
      // The first traced tree doubles as the machine-readable span input
      // for trace_export_cli --trace (RenderTraceJson schema).
      if (q == 0 && !options.trace_out.empty()) {
        std::FILE* f = std::fopen(options.trace_out.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot write %s\n", options.trace_out.c_str());
          return 1;
        }
        std::fputs(explain.json.c_str(), f);
        std::fclose(f);
        std::fprintf(stderr, "explain json written to %s\n",
                     options.trace_out.c_str());
      }
    }
  }
  if (options.sessions) {
    // Serving path: admission-controlled concurrent sessions; alternate the
    // priority class so both per-class latency histograms populate.
    SessionManager& sm = table.EnableServing();
    SloMonitor slo(SloMonitor::Options::FromEnv());
    if (options.slo) sm.set_slo_monitor(&slo);
    LatencyProfiler profiler(LatencyProfiler::Options::FromEnv());
    if (options.phases) sm.set_latency_profiler(&profiler);
    std::vector<SessionHandle> handles;
    handles.reserve(queries.size());
    for (size_t q = 0; q < queries.size(); ++q) {
      SubmitOptions sopts;
      sopts.query_class =
          q % 2 == 0 ? QueryClass::kOltp : QueryClass::kOlap;
      sopts.threads = options.threads;
      auto session = sm.Submit(queries[q], sopts);
      if (!session.ok()) {
        ++failures;
        continue;
      }
      handles.push_back(*session);
    }
    for (const SessionHandle& session : handles) {
      const QueryResult result = session->Await();
      if (!result.status.ok()) ++failures;
      total_rows += result.positions.size();
    }
    sm.Drain();
    std::fprintf(stderr,
                 "served %zu sessions over %zu workers (queue cap %zu): "
                 "%zu queued, %zu in flight after drain\n",
                 (size_t)sm.tickets_issued(), sm.options().max_sessions,
                 sm.options().queue_capacity, sm.queued(), sm.in_flight());
    if (options.slo) {
      slo.ExportGauges();
      for (size_t cls = 0; cls < kQueryClassCount; ++cls) {
        const SloMonitor::ClassSnapshot snap =
            slo.Snapshot(QueryClass(cls));
        std::fprintf(stderr,
                     "slo[%s]: %llu observed, %llu violations, "
                     "burn fast=%.3f slow=%.3f%s\n",
                     cls == 0 ? "oltp" : "olap",
                     (unsigned long long)snap.observations,
                     (unsigned long long)snap.violations, snap.fast_burn,
                     snap.slow_burn, snap.breached ? " BREACHED" : "");
      }
      sm.set_slo_monitor(nullptr);
    }
    if (options.phases) {
      profiler.ExportMetrics();
      const std::string phase_report = options.format == "json"
                                           ? profiler.ReportJson()
                                           : profiler.ReportText();
      if (options.phases_out.empty()) {
        std::fputs(phase_report.c_str(), stderr);
      } else {
        FILE* pf = std::fopen(options.phases_out.c_str(), "w");
        if (pf == nullptr) {
          std::fprintf(stderr, "cannot write %s\n",
                       options.phases_out.c_str());
          return 1;
        }
        std::fputs(phase_report.c_str(), pf);
        std::fclose(pf);
        std::fprintf(stderr, "phase report written to %s\n",
                     options.phases_out.c_str());
      }
      sm.set_latency_profiler(nullptr);
    }
  } else {
    for (size_t q = 0; q < queries.size(); ++q) {
      const QueryResult result =
          table.Execute(txn, queries[q], options.threads);
      if (!result.status.ok()) ++failures;
      total_rows += result.positions.size();
    }
  }
  table.Commit(&txn);
  std::fprintf(stderr,
               "ran %zu queries over %zu x %zu rows (%u threads): "
               "%llu qualifying rows, %zu failures\n",
               queries.size(), options.rows, options.cols, options.threads,
               (unsigned long long)total_rows, failures);
  std::fprintf(stderr,
               "workload drift: %.4f (window-over-window TV distance, "
               "%zu live windows)\n",
               table.monitor().Drift(), table.monitor().window_count());

  // Always refresh the hytap_doctor_* gauges so the exported snapshot has
  // them; --doctor additionally prints the human-readable report, --solver
  // routes the recommendation through the anytime portfolio so the
  // hytap_solver_* family is populated too.
  DoctorOptions doctor_options;
  if (options.solver) {
    doctor_options.use_portfolio = true;
    if (doctor_options.portfolio.budget_ms <= 0.0) {
      doctor_options.portfolio.budget_ms = 50.0;
    }
  }
  PlacementDoctor doctor(doctor_options);
  const DoctorReport report = doctor.Diagnose(table);
  if (options.doctor) {
    std::fprintf(stderr, "%s", report.ToText().c_str());
  }

  const MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const std::string rendered = options.format == "json"
                                   ? snapshot.ToJson()
                                   : snapshot.ToPrometheusText();
  if (options.out.empty()) {
    std::fputs(rendered.c_str(), stdout);
  } else {
    FILE* f = std::fopen(options.out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.out.c_str());
      return 1;
    }
    std::fputs(rendered.c_str(), f);
    std::fclose(f);
    std::fprintf(stderr, "metrics written to %s\n", options.out.c_str());
  }
  return failures == 0 ? 0 : 1;
}

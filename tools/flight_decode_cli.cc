// hytap-flight-decode: render a binary flight-recorder dump as a merged
// human-readable or JSON timeline correlating serving, re-tiering, and
// fault events.
//
// Usage:
//   flight_decode_cli <dump.bin> [--format text|json] [--out <path>]
//                     [--ticket N] [--window N] [--type NAME]
//
// Events are printed in the dump's canonical order (window, sim_ns, ticket,
// type, code, seq, a, b) — the deterministic timeline the recorder sorted
// them into — so two decoders over the same dump always agree byte for byte.
// The filter flags keep large dumps greppable without decoding everything:
// each may be given once and they compose with AND.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/flight_recorder.h"

using namespace hytap;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: flight_decode_cli <dump.bin> [--format text|json] "
               "[--out <path>] [--ticket N] [--window N] [--type NAME]\n");
  return 2;
}

const char* QueryClassName(uint64_t cls) {
  switch (cls) {
    case 0:
      return "oltp";
    case 1:
      return "olap";
    default:
      return "?";
  }
}

const char* PhaseName(uint64_t phase) {
  switch (phase) {
    case 0:
      return "scan_probe";
    case 1:
      return "delta";
    case 2:
      return "materialize";
    case 3:
      return "store_io";
    case 4:
      return "retry_backoff";
    default:
      return "?";
  }
}

const char* AnomalyKindName(uint16_t code) {
  switch (AnomalyKind(code)) {
    case AnomalyKind::kManual:
      return "manual";
    case AnomalyKind::kSloBreach:
      return "slo_breach";
    case AnomalyKind::kStickyQuarantine:
      return "sticky_quarantine";
    case AnomalyKind::kRetierAbort:
      return "retier_abort";
    case AnomalyKind::kChecksumFailure:
      return "checksum_failure";
  }
  return "?";
}

/// One-line human reading of the type-specific operands.
std::string Detail(const FlightEvent& e) {
  char buf[160];
  switch (FlightEventType(e.type)) {
    case FlightEventType::kSessionAdmit:
      std::snprintf(buf, sizeof buf, "class=%s deadline_ns=%" PRIu64,
                    QueryClassName(e.a), e.b);
      break;
    case FlightEventType::kSessionReject:
      std::snprintf(buf, sizeof buf, "class=%s status=%u",
                    QueryClassName(e.a), unsigned(e.code));
      break;
    case FlightEventType::kSessionDispatch:
      std::snprintf(buf, sizeof buf, "class=%s", QueryClassName(e.a));
      break;
    case FlightEventType::kSessionCancel:
      std::snprintf(buf, sizeof buf, "class=%s accrued_ns=%" PRIu64,
                    QueryClassName(e.a), e.b);
      break;
    case FlightEventType::kSessionShed:
      // Shed queries never execute: b is their simulated queue wait
      // (identically 0 — queueing is instantaneous on the simulated clock),
      // never a latency.
      std::snprintf(buf, sizeof buf, "class=%s queue_wait_ns=%" PRIu64
                    " status=%u",
                    QueryClassName(e.a), e.b, unsigned(e.code));
      break;
    case FlightEventType::kSessionComplete:
      std::snprintf(buf, sizeof buf, "class=%s latency_ns=%" PRIu64
                    " status=%u",
                    QueryClassName(e.a), e.b, unsigned(e.code));
      break;
    case FlightEventType::kRetierTrigger:
      std::snprintf(buf, sizeof buf, "plan=%" PRIu64 " steps=%" PRIu64
                    " reason=%s",
                    e.ticket, e.a, e.code == 1 ? "drift" : "periodic");
      break;
    case FlightEventType::kRetierStep:
      std::snprintf(buf, sizeof buf, "plan=%" PRIu64 " column=%" PRIu64
                    " bytes=%" PRIu64 " dir=%s",
                    e.ticket, e.a, e.b, e.code == 1 ? "to_dram" : "to_disk");
      break;
    case FlightEventType::kRetierQuarantine:
      std::snprintf(buf, sizeof buf, "plan=%" PRIu64 " column=%" PRIu64
                    " bytes=%" PRIu64,
                    e.ticket, e.a, e.b);
      break;
    case FlightEventType::kRetierAbort:
      std::snprintf(buf, sizeof buf, "plan=%" PRIu64 " aborted_steps=%" PRIu64
                    " applied_steps=%" PRIu64,
                    e.ticket, e.a, e.b);
      break;
    case FlightEventType::kRetierPlanDone:
      std::snprintf(buf, sizeof buf, "plan=%" PRIu64 " applied=%" PRIu64
                    " moved_bytes=%" PRIu64 "%s",
                    e.ticket, e.a, e.b, e.code == 1 ? " aborted" : "");
      break;
    case FlightEventType::kStoreFault:
      std::snprintf(buf, sizeof buf, "page=%" PRIu64 " attempt=%" PRIu64
                    " fault=%u",
                    e.a, e.b, unsigned(e.code));
      break;
    case FlightEventType::kStoreChecksumFail:
      std::snprintf(buf, sizeof buf, "page=%" PRIu64 " attempt=%" PRIu64,
                    e.a, e.b);
      break;
    case FlightEventType::kStoreQuarantine:
      std::snprintf(buf, sizeof buf, "page=%" PRIu64 " status=%u", e.a,
                    unsigned(e.code));
      break;
    case FlightEventType::kStoreVerifyFail:
      std::snprintf(buf, sizeof buf, "page=%" PRIu64, e.a);
      break;
    case FlightEventType::kMergeBegin:
    case FlightEventType::kMergeEnd:
      std::snprintf(buf, sizeof buf, "delta_rows=%" PRIu64 " status=%u", e.a,
                    unsigned(e.code));
      break;
    case FlightEventType::kMigrationBegin:
      std::snprintf(buf, sizeof buf, "column=%" PRIu64 " dir=%s", e.a,
                    e.code == 1 ? "to_dram" : "to_disk");
      break;
    case FlightEventType::kMigrationEnd:
      std::snprintf(buf, sizeof buf, "column=%" PRIu64 " moved_bytes=%" PRIu64
                    "%s",
                    e.a, e.b, e.code == 1 ? " failed" : "");
      break;
    case FlightEventType::kSloBreach:
      std::snprintf(buf, sizeof buf, "class=%s burn_milli=%" PRIu64
                    " window=%u",
                    QueryClassName(e.a), e.b, unsigned(e.code));
      break;
    case FlightEventType::kSloClear:
      std::snprintf(buf, sizeof buf, "class=%s", QueryClassName(e.a));
      break;
    case FlightEventType::kAnomaly:
      std::snprintf(buf, sizeof buf, "kind=%s", AnomalyKindName(e.code));
      break;
    case FlightEventType::kPhaseAttribution:
      std::snprintf(buf, sizeof buf,
                    "class=%s dominant=%s latency_ns=%" PRIu64
                    "%s%s",
                    QueryClassName(e.code >> 2), PhaseName(e.a), e.b,
                    (e.code & 1) != 0 ? " slo_breach" : "",
                    (e.code & 2) != 0 ? " p99_tail" : "");
      break;
    default:
      std::snprintf(buf, sizeof buf, "a=%" PRIu64 " b=%" PRIu64, e.a, e.b);
      break;
  }
  return buf;
}

void RenderText(FILE* out, const std::string& reason,
                const std::vector<FlightEvent>& events) {
  std::fprintf(out, "# flight dump: %zu events, trigger \"%s\"\n",
               events.size(), reason.c_str());
  std::fprintf(out, "%10s %15s %8s %4s %-18s %s\n", "window", "sim_ns",
               "ticket", "seq", "event", "detail");
  for (const FlightEvent& e : events) {
    std::fprintf(out, "%10" PRIu64 " %15" PRIu64 " %8" PRIu64 " %4u %-18s %s\n",
                 e.window, e.sim_ns, e.ticket, e.seq,
                 FlightEventTypeName(e.type), Detail(e).c_str());
  }
}

void RenderJson(FILE* out, const std::string& reason,
                const std::vector<FlightEvent>& events) {
  std::fprintf(out, "{\"reason\":\"%s\",\"event_count\":%zu,\"events\":[",
               reason.c_str(), events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const FlightEvent& e = events[i];
    std::fprintf(out,
                 "%s{\"window\":%" PRIu64 ",\"sim_ns\":%" PRIu64
                 ",\"ticket\":%" PRIu64 ",\"seq\":%u,\"type\":\"%s\""
                 ",\"code\":%u,\"a\":%" PRIu64 ",\"b\":%" PRIu64 "}",
                 i == 0 ? "" : ",", e.window, e.sim_ns, e.ticket, e.seq,
                 FlightEventTypeName(e.type), unsigned(e.code), e.a, e.b);
  }
  std::fprintf(out, "]}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string format = "text";
  std::string out_path;
  bool have_ticket = false, have_window = false;
  uint64_t ticket_filter = 0, window_filter = 0;
  std::string type_filter;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--format") {
      if (i + 1 >= argc) return Usage();
      format = argv[++i];
    } else if (arg == "--out") {
      if (i + 1 >= argc) return Usage();
      out_path = argv[++i];
    } else if (arg == "--ticket") {
      if (i + 1 >= argc) return Usage();
      ticket_filter = std::strtoull(argv[++i], nullptr, 10);
      have_ticket = true;
    } else if (arg == "--window") {
      if (i + 1 >= argc) return Usage();
      window_filter = std::strtoull(argv[++i], nullptr, 10);
      have_window = true;
    } else if (arg == "--type") {
      if (i + 1 >= argc) return Usage();
      type_filter = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty() || (format != "text" && format != "json")) return Usage();

  std::vector<FlightEvent> events;
  std::string reason;
  if (!ReadFlightDump(path, &events, &reason)) {
    std::fprintf(stderr, "cannot decode %s (short read or bad header)\n",
                 path.c_str());
    return 1;
  }

  if (have_ticket || have_window || !type_filter.empty()) {
    std::vector<FlightEvent> kept;
    kept.reserve(events.size());
    for (const FlightEvent& e : events) {
      if (have_ticket && e.ticket != ticket_filter) continue;
      if (have_window && e.window != window_filter) continue;
      if (!type_filter.empty() &&
          std::strcmp(FlightEventTypeName(e.type), type_filter.c_str()) != 0) {
        continue;
      }
      kept.push_back(e);
    }
    events.swap(kept);
  }

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  if (format == "json") {
    RenderJson(out, reason, events);
  } else {
    RenderText(out, reason, events);
  }
  if (out != stdout) std::fclose(out);
  return 0;
}

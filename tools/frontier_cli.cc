// hytap-frontier: prints the explicit Pareto frontier of a workload file as
// CSV (step, column, critical alpha, cumulative DRAM, scan cost), ready for
// plotting Figure-3-style efficient frontiers.
//
// Usage: frontier_cli <workload-file> [--c-mm <x>] [--c-ss <x>]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "io/workload_io.h"
#include "selection/selectors.h"

using namespace hytap;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: frontier_cli <workload-file> [--c-mm <x>] "
                 "[--c-ss <x>]\n");
    return 2;
  }
  ScanCostParams params;
  for (int i = 2; i + 1 < argc; i += 2) {
    const std::string arg = argv[i];
    if (arg == "--c-mm") {
      params.c_mm = std::atof(argv[i + 1]);
    } else if (arg == "--c-ss") {
      params.c_ss = std::atof(argv[i + 1]);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  StatusOr<Workload> workload = ReadWorkloadFile(argv[1]);
  if (!workload.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  SelectionProblem problem;
  problem.workload = &*workload;
  problem.params = params;
  ExplicitFrontier frontier = ComputeExplicitFrontier(problem);
  std::fputs(FrontierToCsv(frontier, *workload).c_str(), stdout);
  return 0;
}

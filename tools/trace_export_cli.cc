// Fuses a flight-recorder dump (and optionally an Explain trace JSON) into
// Chrome trace-event / Perfetto JSON, openable in ui.perfetto.dev.
//
// Usage:
//   trace_export_cli <flight_dump.bin> [--trace explain.json] [--out path]
//
// Without --out the timeline is written to stdout.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flight_recorder.h"
#include "common/trace.h"
#include "io/perfetto_export.h"

namespace {

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  char buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->append(buffer, n);
  }
  std::fclose(f);
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <flight_dump.bin> [--trace explain.json] "
               "[--out path]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dump_path;
  std::string trace_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      return Usage(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else if (dump_path.empty()) {
      dump_path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (dump_path.empty()) return Usage(argv[0]);

  std::vector<hytap::FlightEvent> events;
  std::string reason;
  if (!hytap::ReadFlightDump(dump_path, &events, &reason)) {
    std::fprintf(stderr, "failed to read flight dump: %s\n",
                 dump_path.c_str());
    return 1;
  }

  hytap::TraceSpan explain;
  bool have_explain = false;
  if (!trace_path.empty()) {
    std::string trace_json;
    if (!ReadFile(trace_path, &trace_json)) {
      std::fprintf(stderr, "failed to read trace json: %s\n",
                   trace_path.c_str());
      return 1;
    }
    if (!hytap::ParseTraceJson(trace_json, &explain)) {
      std::fprintf(stderr, "failed to parse trace json: %s\n",
                   trace_path.c_str());
      return 1;
    }
    have_explain = true;
  }

  const std::string timeline = hytap::RenderPerfettoJson(
      events, reason, have_explain ? &explain : nullptr);

  if (out_path.empty()) {
    std::fwrite(timeline.data(), 1, timeline.size(), stdout);
  } else {
    std::FILE* f = std::fopen(out_path.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "failed to open %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(timeline.data(), 1, timeline.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %zu bytes (%zu events) to %s\n",
                 timeline.size(), events.size(), out_path.c_str());
  }
  return 0;
}

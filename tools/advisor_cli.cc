// hytap-advisor: column selection from a workload file.
//
// Usage:
//   advisor_cli <workload-file> [--budget <w>] [--algorithm explicit|
//       integer|greedy|h1|h2|h3] [--c-mm <x>] [--c-ss <x>] [--csv]
//
// Reads a `hytap-workload v1` file (see src/io/workload_io.h), runs the
// selected algorithm for the relative DRAM budget w, and prints the chosen
// allocation plus model statistics.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "io/workload_io.h"
#include "selection/heuristics.h"
#include "selection/selectors.h"

using namespace hytap;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: advisor_cli <workload-file> [--budget <w>] [--algorithm "
      "explicit|integer|greedy|h1|h2|h3] [--c-mm <x>] [--c-ss <x>] "
      "[--csv]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string path = argv[1];
  double budget_w = 0.5;
  std::string algorithm = "explicit";
  ScanCostParams params;
  bool csv = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](double* out) {
      if (i + 1 >= argc) return false;
      *out = std::atof(argv[++i]);
      return true;
    };
    if (arg == "--budget") {
      if (!next(&budget_w)) return Usage();
    } else if (arg == "--algorithm") {
      if (i + 1 >= argc) return Usage();
      algorithm = argv[++i];
    } else if (arg == "--c-mm") {
      if (!next(&params.c_mm)) return Usage();
    } else if (arg == "--c-ss") {
      if (!next(&params.c_ss)) return Usage();
    } else if (arg == "--csv") {
      csv = true;
    } else {
      return Usage();
    }
  }
  if (budget_w < 0.0 || budget_w > 1.0) {
    std::fprintf(stderr, "budget must be in [0, 1]\n");
    return 2;
  }

  StatusOr<Workload> workload = ReadWorkloadFile(path);
  if (!workload.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }
  workload->Check();
  auto problem =
      SelectionProblem::FromRelativeBudget(*workload, params, budget_w);
  SelectionResult result;
  if (algorithm == "explicit") {
    result = SelectExplicit(problem);
  } else if (algorithm == "integer") {
    result = SelectIntegerOptimal(problem);
  } else if (algorithm == "greedy") {
    result = SelectGreedyMarginal(problem);
  } else if (algorithm == "h1") {
    result = SelectHeuristic(problem, HeuristicKind::kH1Frequency);
  } else if (algorithm == "h2") {
    result = SelectHeuristic(problem, HeuristicKind::kH2Selectivity);
  } else if (algorithm == "h3") {
    result = SelectHeuristic(problem, HeuristicKind::kH3SelectivityPerFreq);
  } else {
    return Usage();
  }

  if (csv) {
    std::fputs(AllocationToCsv(result, *workload).c_str(), stdout);
    return 0;
  }
  CostModel model(*workload, params);
  std::printf("workload: %zu columns, %zu query templates, %.1f MB total\n",
              workload->column_count(), workload->query_count(),
              workload->TotalBytes() / 1e6);
  std::printf("algorithm: %s   budget: w = %.3f (%.1f MB)\n",
              algorithm.c_str(), budget_w, problem.budget_bytes / 1e6);
  size_t in_dram = 0;
  for (uint8_t b : result.in_dram) in_dram += b;
  std::printf("selected %zu columns for DRAM (%.1f MB, %.1f%% evicted)\n",
              in_dram, result.dram_bytes / 1e6,
              100.0 * (1.0 - result.dram_bytes / workload->TotalBytes()));
  std::printf("relative performance: %.4f   solve time: %.3g s%s\n",
              model.RelativePerformance(result.in_dram),
              result.solve_seconds,
              result.optimal ? "" : "   (not proven optimal)");
  return 0;
}
